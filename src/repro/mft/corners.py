"""Corner/mismatch PSD sweeps through one parameter-batched kernel.

A corner sweep evaluates one circuit family — an M-corner
:class:`~repro.circuits.corners.ParameterGrid` — over one frequency
grid.  Running it as M independent sweeps repeats all the work that is
*shared* across corners: corners that differ only in noise intensities
share every propagator, covariance basis, and eigendecomposition with
their dynamics root, and even across distinct solves the per-frequency
LU of ``I − e^{-jωT}M₀`` can serve many forcing rows at once.  This
module instead flattens the ``(corner, frequency)`` product into one
frequency-major axis (flat cell ``i`` = frequency ``i // M``, corner
``i % M``) and drives it through the ordinary
:class:`~repro.mft.executor.SweepExecutor` — chunking, thread/process
backends, retry/fault seams, and checkpointing all work unchanged —
with a :class:`CornerBatchAnalyzer` that evaluates each chunk through
:func:`repro.mft.spectral.solve_param_batched`.

The fallback lattice has three levels (DESIGN.md §12):

* **param** — a stacked multi-corner kernel call that raises is retried
  per corner through the single-parameter PR-4 spectral path;
* **group** — a segment group without a usable eigenbasis uses the
  per-frequency reference integrals inside the kernel (PR-4 semantics);
* **cell** — a ``(corner, frequency)`` cell whose batched solve is
  rejected (condition gate, singular fixed point, non-finite value) is
  rescued through that corner's per-frequency fallback chain
  (:mod:`repro.diagnostics.fallback`), exactly as a plain sweep would.

With ``M = 1`` the flat axis *is* the frequency axis, every chunk stack
holds one forcing row, and the kernel computes bit-for-bit what
``psd_sweep(solver="spectral-batch")`` computes — the parity battery in
``tests/test_corner_sweep.py`` pins this.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..circuits.corners import ParameterGrid
from ..diagnostics.fallback import FallbackExhausted, run_fallback_chain
from ..diagnostics.report import DiagnosticsReport, FrequencyFailure
from ..errors import ReproError
from ..noise.result import PsdResult
from ..resilience.faults import fire as _inject_fault
from ..results.protocol import deprecated_export_alias
from ..typing import FloatArray
from .context import SweepContext, sweep_context_for
from .engine import MftNoiseAnalyzer, _record_budget_failures
from .spectral import solve_param_batched

logger = logging.getLogger(__name__)

__all__ = ["CornerBatchAnalyzer", "CornerSweepResult", "corner_psd_sweep"]

#: Default frequencies per executor chunk of a corner sweep (the flat
#: chunk holds this many frequencies × all M corners, so chunks always
#: align with whole frequency slices and one chunk is one stacked
#: kernel call per dynamics group).
CORNER_CHUNK_FREQUENCIES = 64


def _system_of(model_or_system: Any) -> Any:
    """The LPTV system behind a builder result (model or bare system)."""
    system = getattr(model_or_system, "system", None)
    return system if system is not None else model_or_system


class CornerBatchAnalyzer:
    """Executor-compatible analyzer over the flattened (corner, freq) axis.

    Wraps one :class:`~repro.mft.engine.MftNoiseAnalyzer` per corner
    (the *members*, sharing dynamics work through their contexts) and
    exposes the sweep-callable surface the
    :class:`~repro.mft.executor.SweepExecutor` drives — ``warm_up``,
    ``_sweep_batched(freqs, …, start=)``, ``value_width``, checkpoint
    identity — so every executor feature applies to corner sweeps
    without executor changes.  The ``frequencies`` the executor passes
    are the flat grid ``np.repeat(freqs, M)``; ``start`` recovers which
    ``(corner, frequency)`` cells a chunk covers.

    Not constructed directly — :func:`corner_psd_sweep` builds the
    members, shares preflights across derived corners, and maps the
    flat result back to corner shape.
    """

    def __init__(self, members: Sequence[MftNoiseAnalyzer],
                 grid: ParameterGrid, recorder: Any = None,
                 budget: Any = None) -> None:
        member_list = list(members)
        if not member_list:
            raise ReproError("corner analyzer needs at least one member")
        if len(member_list) != len(grid):
            raise ReproError(
                f"{len(member_list)} member analyzers for a grid of "
                f"{len(grid)} corners")
        self.members = member_list
        self.grid = grid
        first = member_list[0]
        self.recorder = recorder if recorder is not None else first.recorder
        self.budget = budget
        self.system = first.system
        self.segments_per_phase = first.segments_per_phase
        self.output_row = first.output_row
        self._disc = first._disc
        merged = DiagnosticsReport(context="corner sweep preflight")
        seen: set[int] = set()
        for member in member_list:
            if id(member.preflight) in seen:
                continue
            seen.add(id(member.preflight))
            merged.merge(member.preflight)
        self.preflight = merged
        self._attribution = False
        self._source_labels: "list[str] | None" = None

    # -- executor duck-type surface -----------------------------------------

    @property
    def n_corners(self) -> int:
        return len(self.members)

    @property
    def context(self) -> SweepContext:
        """The first member's context (executor warm-up gate)."""
        context = self.members[0].context
        assert context is not None  # members are built cache-backed
        return context

    @property
    def cache_stats(self) -> Any:
        return self.members[0].cache_stats

    @property
    def family_hash(self) -> str:
        """Parameter-family hash salting the executor checkpoint key."""
        return self.grid.family_hash()

    @property
    def value_width(self) -> int:
        if not self._attribution:
            return 1
        context = self.members[0].context
        assert context is not None
        return 1 + context.n_sources

    def _output_name(self) -> str:
        return self.members[0]._output_name()

    def warm_up(self) -> "CornerBatchAnalyzer":
        """Warm every member (roots first — derivations draw on them)."""
        for member in self.members:
            member._attribution = self._attribution
            member._source_labels = self._source_labels
            member.warm_up()
            context = member.context
            if context is None:
                raise ReproError(
                    "corner sweep members must be cache-backed "
                    "(cache=True or an explicit context=)")
            context.spectral_bases
        return self

    # -- flat-axis geometry --------------------------------------------------

    def _cells(self, n_local: int, start: int
               ) -> "tuple[np.ndarray, np.ndarray]":
        """``(corner, freq)`` indices of a chunk's flat cells.

        Flat cell ``g`` (global) is frequency ``g // M``, corner
        ``g % M`` — frequency-major, so corner ``m``'s values are the
        stride-``M`` slice of the flat sweep values.
        """
        flat = start + np.arange(n_local)
        m = len(self.members)
        return flat % m, flat // m

    # -- sweep callables -----------------------------------------------------

    def _member_forcing(self, member: MftNoiseAnalyzer) -> FloatArray:
        """Forcing rows for one member: plain or attribution-stacked."""
        context = member.context
        assert context is not None
        forcing = context.forcing_pairs(member._l_row)
        if self.value_width == 1:
            return forcing
        return np.stack(
            [forcing]
            + [context.source_forcing_pairs(member._l_row, s)
               for s in range(self.value_width - 1)])

    def _sweep_raw(self, freqs: FloatArray, on_failure: str, budget: Any,
                   report: DiagnosticsReport, start: int = 0) -> Any:
        """Per-cell reference loop over a flat chunk (no batching).

        Kept for debugging and as the semantic reference of the batched
        path: each cell runs its corner's own fallback chain.
        """
        corners, _freq_idx = self._cells(len(freqs), start)
        width = self.value_width
        values = np.full(freqs.shape if width == 1
                         else (freqs.size, width), np.nan)
        failures: "list[FrequencyFailure]" = []
        attempts_log: "list[Any]" = []
        for local, (f, m) in enumerate(zip(freqs, corners)):
            reason = budget.exceeded()
            if reason is not None:
                _record_budget_failures(freqs, int(local), reason,
                                        failures, report)
                break
            self._solve_cell(int(local), float(f), int(m), values,
                             failures, attempts_log, on_failure, budget,
                             report)
        failures.sort(key=lambda failure: failure.index)
        return values, failures, attempts_log

    def _solve_cell(self, local: int, f: float, m: int,
                    values: FloatArray,
                    failures: "list[FrequencyFailure]",
                    attempts_log: "list[Any]", on_failure: str,
                    budget: Any, report: DiagnosticsReport) -> None:
        """One cell through its corner's per-frequency fallback chain."""
        member = self.members[m]
        rec = self.recorder
        try:
            with rec.span("mft.solve", frequency=f,
                          corner=self.grid.names[m], rescued=True) as span:
                value, attempts = run_fallback_chain(
                    member._strategies(f, budget), f, report, recorder=rec)
            attempts_log.extend(attempts)
            values[local] = value
            if rec.enabled:
                rec.observe("mft.solve_seconds", span.duration)
        except FallbackExhausted as exc:
            attempts_log.extend(exc.attempts)
            failures.append(FrequencyFailure(
                frequency=f, index=local, stage="solve",
                error=type(exc).__name__, message=str(exc)))
            if on_failure == "raise":
                raise exc.attach_diagnostics(report)
            logger.warning("corner %s: recording NaN at %.6g Hz: %s",
                           self.grid.names[m], f, exc)

    def _sweep_batched(self, freqs: FloatArray, on_failure: str,
                       budget: Any, report: DiagnosticsReport,
                       start: int = 0) -> Any:
        """One flat chunk through the parameter-batched spectral kernel.

        Cells are partitioned by the dynamics group of their corner;
        each group solves its members' forcing rows against the union
        of the group's chunk frequencies in **one** stacked kernel call
        (``solve_param_batched`` degenerates to exactly the PR-4 call
        for a lone member).  Rejected cells are rescued per cell
        through their corner's fallback chain; failure records carry
        chunk-local flat indices that the executor offsets to global
        flat indices, which :func:`corner_psd_sweep` maps back to
        per-corner ``(frequency, corner)`` identities.
        """
        rec = self.recorder
        width = self.value_width
        values = np.full(freqs.shape if width == 1
                         else (freqs.size, width), np.nan)
        failures: "list[FrequencyFailure]" = []
        attempts_log: "list[Any]" = []
        reason = budget.exceeded()
        if reason is not None:
            _record_budget_failures(freqs, 0, reason, failures, report)
            return values, failures, attempts_log
        corners, _freq_idx = self._cells(len(freqs), start)
        finite_mask = np.isfinite(freqs)
        for idx in np.nonzero(~finite_mask)[0]:
            exc = ReproError(
                f"analysis frequency must be finite, got {freqs[idx]!r}")
            if on_failure == "raise":
                raise exc.attach_diagnostics(report)
            failures.append(FrequencyFailure(
                frequency=float(freqs[idx]), index=int(idx), stage="input",
                error=type(exc).__name__, message=str(exc)))
            report.error("non-finite-frequency", str(exc), index=int(idx))
        finite_idx = np.nonzero(finite_mask)[0]
        rescue: "list[tuple[int, float, int]]" = []
        if finite_idx.size:
            rec.count("sweep.frequencies", int(finite_idx.size))
            _inject_fault("mft.batch",
                          first_frequency=float(freqs[finite_idx[0]]),
                          n=int(finite_idx.size))
            rescue = self._solve_chunk_groups(freqs, corners, finite_idx,
                                              values, report)
        for local, f, m in rescue:
            self._solve_cell(local, f, m, values, failures, attempts_log,
                             on_failure, budget, report)
        failures.sort(key=lambda failure: failure.index)
        return values, failures, attempts_log

    def _solve_chunk_groups(self, freqs: FloatArray, corners: np.ndarray,
                            finite_idx: np.ndarray, values: FloatArray,
                            report: DiagnosticsReport
                            ) -> "list[tuple[int, float, int]]":
        """Stacked kernel calls per dynamics group; returns rescue cells.

        Returns ``(local_index, frequency, corner)`` triples for every
        cell the batched solve rejected.  ``values`` is filled in place
        for the accepted cells.
        """
        rec = self.recorder
        policy = self.members[0].fallback
        condition_limit = (policy.condition_limit
                           if policy is not None else None)
        width = self.value_width

        # Partition the chunk's finite cells by dynamics group, keeping
        # per-(group, corner) locals in chunk order.
        group_corners: "dict[int, list[int]]" = {}
        cell_lists: "dict[int, dict[int, list[int]]]" = {}
        for local in finite_idx:
            m = int(corners[local])
            context = self.members[m].context
            assert context is not None
            key = context.dynamics_key
            cells = cell_lists.setdefault(key, {})
            if m not in cells:
                group_corners.setdefault(key, []).append(m)
                cells[m] = []
            cells[m].append(int(local))

        rescue: "list[tuple[int, float, int]]" = []
        for key, members in group_corners.items():
            cells = cell_lists[key]
            # Union of the group's chunk frequencies, first-appearance
            # order (bit-parity with the plain sweep's chunk order for
            # M = 1, where the union is the chunk itself).
            union = list(dict.fromkeys(
                float(freqs[local]) for m in members
                for local in cells[m]))
            freq_pos = {f: i for i, f in enumerate(union)}
            omegas = 2.0 * np.pi * np.asarray(union)
            plans = self._row_plan(members)
            contexts = [context for context, _forcing, _owners in plans]
            forcings = [forcing for _context, forcing, _owners in plans]
            with rec.span("spectral.param-batch", n_params=len(members),
                          n_rows=len(plans), n=len(union)):
                batch = solve_param_batched(
                    contexts, omegas, forcings,
                    condition_limit=condition_limit, recorder=rec)
            if batch.fallback_params:
                report.warning(
                    "param-batch-fallback",
                    f"stacked solve over {len(plans)} kernel rows "
                    f"({len(members)} corners) failed; "
                    f"{len(batch.fallback_params)} rows recomputed "
                    "through the single-parameter path",
                    rows=list(batch.fallback_params))
            n_solved = 0
            for slot, (context, _forcing, owners) in enumerate(plans):
                result = batch.results[slot]
                period = context.disc.period
                if result.fallback_groups:
                    self._defective_basis_finding(report, context, result)
                for m, multiplier in owners:
                    member = self.members[m]
                    psd = (2.0 * np.real(result.integral @ member._l_row)
                           / period)
                    # Uniform intensity corners share their dynamics
                    # root's kernel row: S(αQ) = α·S(Q) exactly, so the
                    # solved row is rescaled per corner (α = 1.0 for
                    # the row owner — a bit-exact multiply).
                    psd = multiplier * psd
                    if width > 1:
                        # (R, F) -> (F, R) rows of [total, sources…].
                        psd = psd.T
                        ok = result.ok & np.all(np.isfinite(psd), axis=1)
                    else:
                        ok = result.ok & np.isfinite(psd)
                    for local in cells[m]:
                        fi = freq_pos[float(freqs[local])]
                        if ok[fi]:
                            values[local] = psd[fi]
                            n_solved += 1
                        else:
                            rescue.append((local, float(freqs[local]), m))
            report.info(
                "spectral-batch",
                f"param-batched kernel solved {n_solved} of "
                f"{sum(len(cells[m]) for m in members)} cells across "
                f"{len(members)} corners with {len(plans)} kernel rows "
                f"in {batch.stacked_calls} stacked calls",
                n_batched=n_solved,
                n_rescued=sum(len(cells[m]) for m in members) - n_solved,
                n_params=len(members), n_rows=len(plans))
        return rescue

    def _row_plan(self, members: "list[int]"
                  ) -> "list[tuple[SweepContext, FloatArray, list[tuple[int, float]]]]":
        """Kernel rows for one dynamics group: ``(context, forcing, owners)``.

        Corners whose context is a uniform intensity derivation of the
        same root *share one kernel row* — the root's forcing — and are
        recovered after the solve as ``α² · psd_root`` (noise PSDs are
        exactly linear in uniform source intensity).  This is where the
        corner batch beats per-corner sweeps: an all-uniform group of M
        corners costs one row of per-frequency kernel arithmetic, not
        M.  Per-source (non-uniform) scalings keep their own row, as
        does any context the sweep cannot prove is a derivation.
        ``owners`` lists ``(corner_index, multiplier)`` per row.
        """
        plans: "list[tuple[SweepContext, FloatArray, list[tuple[int, float]]]]" = []
        slot_of_root: "dict[int, int]" = {}
        for m in members:
            member = self.members[m]
            context = member.context
            assert context is not None
            root = getattr(context, "parent", None)
            uniform = getattr(context, "_uniform", None)
            if root is None and not hasattr(context, "_scales"):
                root, uniform = context, 1.0  # the dynamics root itself
            if root is None or uniform is None:
                plans.append((context, self._member_forcing(member),
                              [(m, 1.0)]))
                continue
            slot = slot_of_root.get(id(root))
            if slot is None:
                slot_of_root[id(root)] = len(plans)
                plans.append((root, self._root_forcing(root, member),
                              [(m, float(uniform))]))
            else:
                plans[slot][2].append((m, float(uniform)))
        return plans

    def _root_forcing(self, root: SweepContext,
                      member: MftNoiseAnalyzer) -> FloatArray:
        """A shared row's forcing: the dynamics root's own stack."""
        forcing = root.forcing_pairs(member._l_row)
        if self.value_width == 1:
            return forcing
        return np.stack(
            [forcing]
            + [root.source_forcing_pairs(member._l_row, s)
               for s in range(self.value_width - 1)])

    def _defective_basis_finding(self, report: DiagnosticsReport,
                                 context: SweepContext,
                                 result: Any) -> None:
        """Mirror the plain sweep's defective-eigenbasis warning."""
        bases = context.spectral_bases
        report.warning(
            "spectral-defective-basis",
            f"{len(result.fallback_groups)} of {len(bases)} segment "
            "groups lack a usable eigenbasis; those groups used the "
            "per-frequency reference integrals",
            groups=list(result.fallback_groups),
            conditions=[bases[g].condition
                        for g in result.fallback_groups],
            reasons=[bases[g].reason for g in result.fallback_groups])


@dataclass
class CornerSweepResult:
    """Corner-shaped view of one parameter-batched PSD sweep.

    ``values[m, k]`` is corner ``m``'s (clipped) PSD at
    ``frequencies[k]`` in V²/Hz; NaN where that cell failed.
    Per-corner failure records carry the corner's *own* frequency
    indices; ``diagnostics`` is the whole-sweep report and ``info``
    the executor metadata of the underlying flat sweep.
    """

    frequencies: FloatArray
    values: FloatArray
    corner_names: "list[str]"
    failures: "dict[str, list[FrequencyFailure]]"
    diagnostics: DiagnosticsReport
    info: "dict[str, Any]"
    budgets: "dict[str, Any] | None" = None
    method: str = "mft"
    solver: str = "param-batch"
    output: str = ""

    @property
    def n_corners(self) -> int:
        return self.values.shape[0]

    def corner(self, which: "int | str") -> PsdResult:
        """One corner's sweep as an ordinary :class:`PsdResult`."""
        if isinstance(which, str):
            try:
                index = self.corner_names.index(which)
            except ValueError:
                raise ReproError(
                    f"unknown corner {which!r}; names are "
                    f"{self.corner_names}") from None
        else:
            index = int(which)
            if not 0 <= index < self.n_corners:
                raise ReproError(
                    f"corner index {index} out of range for "
                    f"{self.n_corners} corners")
        name = self.corner_names[index]
        info: "dict[str, Any]" = {
            "corner": name,
            "failures": list(self.failures.get(name, [])),
            "diagnostics": self.diagnostics,
            "budget": (self.budgets or {}).get(name),
        }
        return PsdResult(frequencies=self.frequencies,
                         psd=np.array(self.values[index]),
                         method=self.method, output=self.output,
                         info=info)

    def worst_corners(self, frequency: "float | None" = None
                      ) -> "list[tuple[str, float]]":
        """Corners ranked worst-first by peak PSD (or PSD at one f).

        With ``frequency`` given the ranking key is the PSD at the
        nearest grid frequency; otherwise each corner's maximum over
        the grid.  NaN-only corners rank last with a NaN key.
        """
        if frequency is None:
            with np.errstate(all="ignore"):
                keys = np.nanmax(np.where(np.isfinite(self.values),
                                          self.values, -np.inf), axis=1)
            keys = np.where(np.isfinite(keys), keys, np.nan)
        else:
            k = int(np.argmin(np.abs(self.frequencies
                                     - float(frequency))))
            keys = self.values[:, k]
        order = np.argsort(-np.nan_to_num(keys, nan=-np.inf))
        return [(self.corner_names[i], float(keys[i])) for i in order]

    def to_table(self, frequency: "float | None" = None,
                 limit: "int | None" = None) -> str:
        """Ranked worst-corner table (the README quickstart's output).

        Values are double-sided PSDs in V²/Hz — peak over the grid, or
        at the grid frequency nearest ``frequency`` when given.
        """
        ranked = self.worst_corners(frequency)
        if limit is not None:
            ranked = ranked[:int(limit)]
        label = ("peak PSD [V^2/Hz]" if frequency is None
                 else f"PSD @ {frequency:g} Hz [V^2/Hz]")
        name_width = max([len("corner")]
                         + [len(name) for name, _v in ranked])
        lines = [f"{'corner'.ljust(name_width)}  {label}",
                 f"{'-' * name_width}  {'-' * len(label)}"]
        for name, value in ranked:
            lines.append(f"{name.ljust(name_width)}  {value:.6e}")
        return "\n".join(lines)

    table = deprecated_export_alias("table", "to_table")

    def to_json(self) -> "dict[str, Any]":
        """JSON-ready payload; inverse is
        :func:`repro.results.from_payload`."""
        from ..results import to_payload
        return to_payload(self)

    def to_csv(self, path: Any) -> Any:
        """Write the corner matrix as CSV; returns the path.

        One row per frequency: ``frequency_hz`` then one double-sided
        V²/Hz column per corner (NaN where that cell failed).
        """
        from ..io import write_csv
        headers = ["frequency_hz"] + list(self.corner_names)
        rows = list(zip(self.frequencies,
                        *(self.values[m] for m in range(self.n_corners))))
        return write_csv(path, headers, rows)

    def __repr__(self) -> str:
        return (f"CornerSweepResult({self.n_corners} corners x "
                f"{self.frequencies.size} frequencies, "
                f"output={self.output!r})")


def _build_members(model_or_system: Any, grid: ParameterGrid,
                   output_row: int, segments_per_phase: int,
                   recorder: Any, derive_intensity: bool
                   ) -> "list[MftNoiseAnalyzer]":
    """One cache-backed analyzer per corner, sharing dynamics work.

    Corners are grouped by dynamics overrides; each distinct dynamics
    point gets one *root* context (and one preflight, shared by every
    member on it).  Intensity-only variations on a root derive their
    context (``derive_intensity=True``) instead of rebuilding — the
    nearly-free path — or rebuild from a rescaled system when exact
    fresh numerics are wanted (``derive_intensity=False``).  All
    registry entries are salted with the grid's family hash.
    """
    from ..circuits.corners import scale_system_noise

    family = grid.family_hash()
    base_system = _system_of(model_or_system)
    noise_labels = getattr(model_or_system, "noise_labels", None)

    roots: "dict[tuple[tuple[str, str], ...], tuple[Any, SweepContext, MftNoiseAnalyzer | None]]" = {}
    members: "list[MftNoiseAnalyzer]" = []
    for index, corner in enumerate(grid.corners):
        dyn_key = corner.overrides_key()
        root = roots.get(dyn_key)
        if root is None:
            built = grid.build_model(index)
            system = base_system if built is None else _system_of(built)
            context = sweep_context_for(system, segments_per_phase,
                                        family=family)
            roots[dyn_key] = (system, context, None)
            root = roots[dyn_key]
        system, context, root_member = root

        scale = corner.uniform_scale
        trivial = scale is not None and scale == 1.0
        if trivial:
            member_system, member_context = system, context
        else:
            if corner.uniform_scale is None:
                scales = corner.resolved_scales(noise_labels,
                                                context.n_sources)
            else:
                scales = np.atleast_1d(np.asarray(
                    corner.uniform_scale, dtype=float))
            member_system = scale_system_noise(system, scales)
            if derive_intensity:
                member_context = sweep_context_for(
                    member_system, segments_per_phase, family=family,
                    build=lambda c=context, s=scales, ms=member_system:
                        c.derive_intensity_scaled(s, system=ms))
            else:
                member_context = sweep_context_for(
                    member_system, segments_per_phase, family=family)

        # One preflight per dynamics root, cached on the (registry
        # -cached) root context across sweeps: the first member on a
        # root validates; intensity siblings and later sweeps adopt
        # its report (intensity scaling cannot change stability,
        # schedule, or finiteness, and a cached context's
        # discretization is immutable).
        preflight: Any = (getattr(context, "_preflight_report", None)
                          if root_member is None
                          else root_member.preflight)
        if preflight is None:
            preflight = True
        member = MftNoiseAnalyzer(
            member_system, segments_per_phase=segments_per_phase,
            output_row=output_row, context=member_context,
            preflight=preflight, recorder=recorder)
        if root_member is None:
            setattr(context, "_preflight_report", member.preflight)
            roots[dyn_key] = (system, context, member)
        members.append(member)
    return members


def corner_psd_sweep(model_or_system: Any, grid: ParameterGrid,
                     frequencies: Any, *, output_row: int = 0,
                     segments_per_phase: int = 64,
                     parallel: "str | None" = None,
                     max_workers: "int | None" = None,
                     chunk_size: "int | None" = None,
                     budget: Any = None, on_failure: str = "record",
                     attribute_sources: Any = False,
                     derive_intensity: bool = True,
                     retry: Any = None, faults: Any = None,
                     checkpoint: Any = None,
                     recorder: Any = None) -> CornerSweepResult:
    """PSD of every corner of ``grid`` in one parameter-batched sweep.

    Values are the library's canonical **double-sided** PSD samples in
    V²/Hz (or A²/Hz for current outputs) — corner for corner the same
    quantity M independent ``psd_sweep`` calls would produce.

    ``model_or_system`` is the *base* circuit (a builder model or bare
    LPTV system) used for corners without dynamics overrides; corners
    with overrides build their own model through the grid's builder.
    Returns a :class:`CornerSweepResult` with values ``(M, K)`` plus
    per-corner failures and (optionally) attribution budgets.

    ``chunk_size`` counts **frequencies** per executor chunk (each flat
    chunk holds that many frequencies × all M corners); the default is
    ``min(K, 64)``.  ``derive_intensity=True`` (default) lets intensity
    -only corners derive their context from the dynamics root (shared
    propagators/bases, linear restack — the nearly-free path, ≤1e-12
    from a fresh build); ``False`` rebuilds each from its rescaled
    system.  ``parallel``/``max_workers``/``budget``/``on_failure``/
    ``retry``/``faults``/``checkpoint`` are the usual executor knobs on
    the flattened axis — a crashed or budget-skipped chunk NaNs exactly
    its ``(corner, frequency)`` cells.
    """
    from .executor import SweepExecutor

    if not isinstance(grid, ParameterGrid):
        raise ReproError(
            f"grid must be a ParameterGrid, got {type(grid).__name__}")
    freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
    n_corners = len(grid)
    members = _build_members(model_or_system, grid, output_row,
                             segments_per_phase, recorder,
                             derive_intensity)
    analyzer = CornerBatchAnalyzer(members, grid, recorder=recorder,
                                   budget=budget)

    if attribute_sources:
        context = members[0].context
        assert context is not None
        labels = members[0]._resolve_source_labels(attribute_sources)
        analyzer._attribution = True
        analyzer._source_labels = labels
        for member in members:
            member._attribution = True
            member._source_labels = labels
    try:
        per_corner_chunk = (min(int(freqs.size), CORNER_CHUNK_FREQUENCIES)
                            if chunk_size is None else int(chunk_size))
        executor = SweepExecutor(
            backend=parallel or "serial", max_workers=max_workers,
            chunk_size=max(1, per_corner_chunk) * n_corners,
            solver="param-batch", retry=retry, faults=faults)
        flat_freqs = np.repeat(freqs, n_corners)
        flat = executor.run(analyzer, flat_freqs, budget=budget,
                            on_failure=on_failure, checkpoint=checkpoint)
    finally:
        for member in members:
            member._attribution = False
            member._source_labels = None
        analyzer._attribution = False
        analyzer._source_labels = None

    # Reshape the flat result to corner shape: flat cell i is frequency
    # i // M, corner i % M, so corner m's sweep is the stride-M slice.
    values = np.asarray(flat.psd).reshape(freqs.size, n_corners).T.copy()
    names = grid.names
    failures: "dict[str, list[FrequencyFailure]]" = {}
    for failure in flat.info.get("failures", []):
        m = failure.index % n_corners
        k = failure.index // n_corners
        failures.setdefault(names[m], []).append(
            FrequencyFailure(frequency=failure.frequency, index=k,
                             stage=failure.stage, error=failure.error,
                             message=failure.message))
    budgets = _split_budgets(flat.info.get("budget"), freqs, names)
    info = dict(flat.info)
    info["n_params"] = n_corners
    info["family_hash"] = grid.family_hash()
    info["flat_result"] = flat
    return CornerSweepResult(
        frequencies=freqs, values=values, corner_names=list(names),
        failures=failures, diagnostics=flat.info["diagnostics"],
        info=info, budgets=budgets, output=flat.output)


def _split_budgets(flat_budget: Any, freqs: FloatArray,
                   names: "Sequence[str]"
                   ) -> "dict[str, Any] | None":
    """Slice a flattened attribution budget into per-corner budgets."""
    if flat_budget is None:
        return None
    from ..metrics import ContributionBudget
    n_corners = len(names)
    contributions = np.asarray(flat_budget.contributions)
    total = np.asarray(flat_budget.total)
    budgets: "dict[str, Any]" = {}
    for m, name in enumerate(names):
        budgets[name] = ContributionBudget(
            frequencies=freqs,
            labels=list(flat_budget.labels),
            contributions=np.ascontiguousarray(
                contributions[:, m::n_corners]),
            total=np.ascontiguousarray(total[m::n_corners]),
            output=flat_budget.output, method=flat_budget.method,
            solver="param-batch")
    return budgets
