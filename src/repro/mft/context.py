"""Shared per-discretization cache: compute frequency-independent work once.

A PSD sweep evaluates the same circuit at 100+ frequencies, yet everything
except the final complex fixed point is *frequency independent*: the
per-segment propagators and Van Loan noise Gramians, the periodic
covariance ``K(t)``, the cross-spectral forcing ``K(t) l``, the monodromy
matrix, and — the insight this module adds — the *suffix products* of the
per-segment maps that assemble the one-period forcing vector. A
:class:`SweepContext` computes each of these once, keyed by the
discretization, and every engine (MFT, brute force, Monte Carlo) draws
from it instead of rebuilding.

The context also carries :meth:`SweepContext.solve_shifted`, a fast
re-formulation of :func:`repro.lptv.periodic_solve.periodic_steady_state`
built on two identities of the frequency-shifted dynamics
``A(t) − jωI``:

* the shifted one-period map is a *scalar* multiple of the cached real
  monodromy, ``M_ω = e^{-jωT} M_0`` (segment phase factors commute with
  the jumps), so the per-frequency ``O(S n³)`` propagator composition
  collapses to one complex scale;
* the forcing accumulation ``g_ω = Σ_k R_k g_k(ω)`` uses the cached real
  suffix products ``R_k`` with per-segment scalar phases, so it becomes
  one batched matrix-vector product instead of a Python loop.

The per-segment forcing integrals ``(I1, I2)`` are grouped by the unique
``(A, h)`` pairs of the discretization (a piecewise-LTI circuit with
uniform segments has one per phase, not one per segment), and the
period-integral resolvent solves are likewise grouped — one linear solve
per unique segment matrix instead of one per segment.

Both paths compute the same quantities; the fast path reorders linear
algebra (sums before solves, scalar scaling before products), so results
agree with the reference to rounding — the equivalence suite pins this
at ``≤ 1e-12`` relative.

Contexts are either built directly (``SweepContext(system, 64)``) or
drawn from the module registry (:func:`sweep_context_for`), which
fingerprints the system content — phase durations, state/noise/jump
matrices, segment counts — so that *mutating* a system or requesting a
different density misses the cache instead of returning stale numerics.
"""

from __future__ import annotations

import hashlib
import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import ReproError, SingularMatrixError
from ..linalg.checked import checked_solve
from ..linalg.lyapunov import (
    fixed_point_condition,
    solve_linear_fixed_point,
    solve_regularized_fixed_point,
)
from ..linalg.phi import affine_step_integrals
from ..linalg.vanloan import vanloan_gramian
from ..lptv.periodic_solve import PeriodicSolution, forcing_from_samples
from ..noise.covariance import periodic_covariance
from ..tolerances import FIXED_POINT_RIDGE

logger = logging.getLogger(__name__)

#: ``‖A_ω‖₁ h`` above which the period integral uses the resolvent solve
#: (mirrors the threshold in :mod:`repro.lptv.periodic_solve`).
_RESOLVENT_NORM_THRESHOLD = 0.5

#: Frequencies whose shifted step integrals are kept per context; a sweep
#: revisits frequencies only through the fallback chain, so this stays
#: small.
_OMEGA_CACHE_LIMIT = 512


@dataclass
class CacheStats:
    """Hit/miss/evict counters for every cached quantity of a context.

    Counters are monotonic for the lifetime of their context — nothing
    (``warm_up`` included) ever resets them, so deltas between two
    :meth:`snapshot` calls are meaningful. Increments are lock-guarded:
    the thread sweep backend mutates one shared instance from many
    workers, and a lost update would break the serial-vs-parallel
    metric-count equality the observability tests assert. The lock is
    dropped on pickle (process workers get a private copy) and rebuilt.
    """

    hits: dict = field(default_factory=dict)
    misses: dict = field(default_factory=dict)
    evictions: dict = field(default_factory=dict)

    def __post_init__(self):
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def hit(self, category):
        with self._lock:
            self.hits[category] = self.hits.get(category, 0) + 1

    def miss(self, category):
        with self._lock:
            self.misses[category] = self.misses.get(category, 0) + 1

    def evict(self, category):
        with self._lock:
            self.evictions[category] = self.evictions.get(category, 0) + 1

    def snapshot(self):
        """Point-in-time copy of all counters (for delta computation)."""
        with self._lock:
            return {
                "hits": dict(self.hits),
                "misses": dict(self.misses),
                "evictions": dict(self.evictions),
            }

    @staticmethod
    def delta(before, after):
        """Per-category counter increments between two snapshots."""
        out = {}
        for kind in ("hits", "misses", "evictions"):
            diffs = {}
            prior = before.get(kind, {})
            for category, count in after.get(kind, {}).items():
                inc = count - prior.get(category, 0)
                if inc:
                    diffs[category] = inc
            out[kind] = diffs
        return out

    def total_hits(self):
        return int(sum(self.hits.values()))

    def total_misses(self):
        return int(sum(self.misses.values()))

    def total_evictions(self):
        return int(sum(self.evictions.values()))

    def to_dict(self):
        """JSON-friendly counters (used by the perf harness)."""
        snap = self.snapshot()
        return {
            "hits": snap["hits"],
            "misses": snap["misses"],
            "evictions": snap["evictions"],
            "total_hits": int(sum(snap["hits"].values())),
            "total_misses": int(sum(snap["misses"].values())),
            "total_evictions": int(sum(snap["evictions"].values())),
        }

    def __str__(self):
        return (f"CacheStats(hits={self.total_hits()}, "
                f"misses={self.total_misses()})")


@dataclass
class _SegmentGroup:
    """Segments sharing one ``(A, h)`` pair (usually: one clock phase)."""

    a_matrix: np.ndarray
    duration: float
    #: Indices into ``disc.segments`` of the member segments.
    indices: np.ndarray
    #: Representative real propagator ``e^{Ah}`` of the group.
    phi: np.ndarray


@dataclass
class _SweepStructure:
    """Frequency-independent arrays derived from one discretization."""

    #: Per-segment durations, end times, and real propagators, stacked.
    durations: np.ndarray
    t_end: np.ndarray
    phi_stack: np.ndarray
    #: Per-segment jump (identity where absent) and a has-jump mask.
    has_jump: np.ndarray
    jumps: list
    #: Real suffix products ``R_k = E_{S-1}···E_{k+1} J_k`` with
    #: ``E_j = J_j Φ_j``: the map from segment k's forcing contribution
    #: to the end of the period, jumps folded in.
    suffix: np.ndarray
    #: Segment groups by unique ``(A, h)``.
    groups: list
    #: For each segment, the index of its group.
    group_of: np.ndarray


def build_structure(disc):
    """Precompute the frequency-independent arrays of a discretization."""
    segments = disc.segments
    n = disc.n_states
    n_seg = len(segments)
    durations = np.asarray([seg.duration for seg in segments])
    t_end = np.asarray([seg.t_end for seg in segments])
    phi_stack = np.stack([seg.phi for seg in segments])
    has_jump = np.asarray([seg.jump is not None for seg in segments])
    jumps = [seg.jump for seg in segments]

    suffix = np.empty((n_seg, n, n))
    acc = np.eye(n)
    for k in range(n_seg - 1, -1, -1):
        jump = jumps[k]
        suffix[k] = acc @ jump if jump is not None else acc
        acc = suffix[k] @ phi_stack[k]

    group_index = {}
    groups = []
    group_of = np.empty(n_seg, dtype=int)
    # scn: ignore[SCN008] - one-shot structure build at context warm-up,
    # bounded by the grid size; sweeps budget-gate per frequency chunk
    for k, seg in enumerate(segments):
        if seg.a_matrix is None:
            raise ReproError(
                "segment is missing its A matrix; rebuild the "
                "discretization with a current version of the library")
        key = (id(seg.a_matrix), seg.duration)
        idx = group_index.get(key)
        if idx is None:
            idx = len(groups)
            group_index[key] = idx
            groups.append(_SegmentGroup(
                a_matrix=seg.a_matrix, duration=seg.duration,
                indices=np.empty(0, dtype=int), phi=seg.phi))
        group_of[k] = idx
    for idx, group in enumerate(groups):
        group.indices = np.nonzero(group_of == idx)[0]
    return _SweepStructure(
        durations=durations, t_end=t_end, phi_stack=phi_stack,
        has_jump=has_jump, jumps=jumps, suffix=suffix, groups=groups,
        group_of=group_of)


class SweepContext:
    """Frequency-independent work of one discretization, computed once.

    Parameters
    ----------
    system:
        An LPTV system (``discretize()`` + ``output_matrix``).
    segments_per_phase:
        Discretization density forwarded to ``system.discretize``.

    Everything is lazy: building a context is free, each cached quantity
    is computed on first use and recorded in :attr:`stats`. Contexts are
    picklable (they carry only arrays), so a process-backend sweep ships
    the precomputed work to its workers instead of recomputing it there.
    """

    def __init__(self, system, segments_per_phase=64):
        if not hasattr(system, "discretize"):
            raise ReproError(
                "system must provide discretize(), got "
                f"{type(system).__name__}")
        self.system = system
        self.segments_per_phase = segments_per_phase
        self.stats = CacheStats()
        self._disc = None
        self._structure = None
        self._covariance = None
        self._monodromy = None
        self._spectral = None
        self._forcing = {}
        self._omega_cache = OrderedDict()
        self._omega_cache_limit = _OMEGA_CACHE_LIMIT
        self._source_discs = {}
        self._source_covariances = {}
        self._source_forcing = {}

    # -- cached frequency-independent quantities ----------------------------

    @property
    def disc(self):
        """The period discretization (propagators + Van Loan Gramians)."""
        if self._disc is None:
            self.stats.miss("disc")
            self._disc = self.system.discretize(self.segments_per_phase)
        else:
            self.stats.hit("disc")
        return self._disc

    @property
    def structure(self):
        """Stacked segment arrays and suffix products (see module doc)."""
        if self._structure is None:
            self.stats.miss("structure")
            self._structure = build_structure(self.disc)
        else:
            self.stats.hit("structure")
        return self._structure

    @property
    def covariance(self):
        """Periodic steady-state covariance ``K(t)``, solved once."""
        if self._covariance is None:
            self.stats.miss("covariance")
            self._covariance = periodic_covariance(self.disc)
        else:
            self.stats.hit("covariance")
        return self._covariance

    @property
    def monodromy(self):
        """One-period real monodromy matrix ``M_0`` (jumps included)."""
        if self._monodromy is None:
            self.stats.miss("monodromy")
            self._monodromy = self.disc.monodromy()
        else:
            self.stats.hit("monodromy")
        return self._monodromy

    @property
    def spectral_bases(self):
        """Per-group eigenbases of the frequency-batched spectral kernel.

        One :class:`~repro.mft.spectral.GroupBasis` per segment group,
        computed once (frequency-independent) and gated on
        :data:`~repro.tolerances.SPECTRAL_EIGENBASIS_COND_LIMIT`; a
        defective group is marked and later served by the per-frequency
        reference path instead.
        """
        if self._spectral is None:
            self.stats.miss("spectral-basis")
            from .spectral import build_group_bases
            self._spectral = build_group_bases(self.structure.groups)
        else:
            self.stats.hit("spectral-basis")
        return self._spectral

    def forcing_pairs(self, l_row):
        """Cross-spectral forcing ``K(t) l`` as per-segment endpoint pairs.

        Cached per output row ``l`` — the expensive parts (``K(t)`` and
        the pair assembly) are shared by every frequency of a sweep.
        """
        l_row = np.asarray(l_row, dtype=float)
        key = l_row.tobytes()
        cached = self._forcing.get(key)
        if cached is not None:
            self.stats.hit("forcing")
            return cached
        self.stats.miss("forcing")
        post, pre = self.covariance.forcing_samples(l_row)
        pairs = forcing_from_samples(self.disc, post, pre)
        self._forcing[key] = pairs
        return pairs

    # -- per-source decomposition -------------------------------------------

    @property
    def n_sources(self):
        """Number of noise-source columns shared by every segment.

        Per-source attribution needs one aligned column basis across the
        whole period: ``B(t) B(t)^T = Σ_s b_s(t) b_s(t)^T`` only splits
        the total covariance when column ``s`` means the *same physical
        source* in every phase (the circuit builder guarantees this by
        sharing one noise-descriptor list across phases). A system whose
        phases disagree on the column count cannot be attributed.
        """
        counts = {seg.b_matrix.shape[1] for seg in self.disc.segments}
        if len(counts) != 1:
            raise ReproError(
                "per-source attribution needs the same number of noise "
                f"columns in every phase, got counts {sorted(counts)}")
        return int(counts.pop())

    def source_disc(self, source):
        """Discretization whose Gramians keep only noise column ``source``.

        Same grid, propagators and jumps as :attr:`disc` — only the Van
        Loan Gramians are rebuilt from the single column
        ``b_s b_s^T``.  The Gramian integral is linear in ``B B^T``, but
        the Van Loan ``expm`` rounds each single-column Gramian
        independently, so the raw per-source Gramians drift from the
        total by ~1e-12 relative — which a near-marginal circuit (e.g.
        the ideal SC integrator) amplifies through its periodic
        covariance fixed point by the fixed point's condition number,
        enough to breach the 1e-9 conservation contract.  The split is
        therefore made *exactly conservative*: the per-segment defect
        ``G_total − Σ_s G_s`` is redistributed over the sources,
        weighted by each Gramian's trace (a ~1e-12 relative nudge),
        so every quantity the covariance solve consumes decomposes to
        summation rounding only.  All sources are built in one pass and
        cached; segments sharing ``(A, B, h)`` (all segments of one
        clock phase) share one Gramian computation.
        """
        source = int(source)
        n_src = self.n_sources
        if not 0 <= source < n_src:
            raise ReproError(
                f"noise source index {source} out of range for "
                f"{n_src} sources")
        cached = self._source_discs.get(source)
        if cached is not None:
            self.stats.hit("source-disc")
            return cached
        self.stats.miss("source-disc")
        disc = self.disc
        gram_cache = {}
        per_source = [[] for _ in range(n_src)]
        for seg in disc.segments:  # scn: ignore[SCN008] - frequency-independent one-time precompute, not a sweep loop
            key = (id(seg.a_matrix), id(seg.b_matrix), seg.duration)
            entry = gram_cache.get(key)
            if entry is None:
                cols = [np.ascontiguousarray(seg.b_matrix[:, [s]])
                        for s in range(n_src)]
                grams = [vanloan_gramian(seg.a_matrix, col @ col.T,
                                         seg.duration)[1]
                         for col in cols]
                defect = seg.gramian - np.add.reduce(grams)
                traces = np.array([np.trace(g).real for g in grams])
                total_trace = float(traces.sum())
                if total_trace > 0.0:
                    weights = traces / total_trace
                else:
                    weights = np.full(n_src, 1.0 / n_src)
                grams = [gram + weight * defect
                         for gram, weight in zip(grams, weights)]
                entry = (cols, grams)
                gram_cache[key] = entry
            for s in range(n_src):
                per_source[s].append(replace(seg, b_matrix=entry[0][s],
                                             gramian=entry[1][s]))
        for s in range(n_src):
            self._source_discs[s] = replace(disc,
                                            segments=per_source[s])
        return self._source_discs[source]

    def source_covariance(self, source):
        """Periodic covariance driven by noise column ``source`` alone."""
        source = int(source)
        cached = self._source_covariances.get(source)
        if cached is not None:
            self.stats.hit("source-covariance")
            return cached
        self.stats.miss("source-covariance")
        covariance = periodic_covariance(self.source_disc(source))
        self._source_covariances[source] = covariance
        return covariance

    def source_forcing_pairs(self, l_row, source):
        """Cross-spectral forcing ``K_s(t) l`` of one noise source."""
        l_row = np.asarray(l_row, dtype=float)
        key = (int(source), l_row.tobytes())
        cached = self._source_forcing.get(key)
        if cached is not None:
            self.stats.hit("source-forcing")
            return cached
        self.stats.miss("source-forcing")
        post, pre = self.source_covariance(source).forcing_samples(l_row)
        pairs = forcing_from_samples(self.disc, post, pre)
        self._source_forcing[key] = pairs
        return pairs

    def shifted_integrals(self, omega):
        """Per-group ``(Φ_ω, I1, I2, A_ω, ‖A_ω‖₁h)`` at one frequency.

        One entry per unique ``(A, h)`` group — the only genuinely
        per-frequency matrix work of a solve. Cached per ω so the
        fallback chain and the instantaneous/contribution observables
        revisit a frequency for free. The shifted norm decides the
        resolvent-vs-trapezoid period integration exactly as the
        reference solver does — it must include the ``−jω`` shift, else
        a quiescent phase (``A ≈ 0``) would take the trapezoid branch
        the reference avoids.
        """
        key = float(omega)
        cached = self._omega_cache.get(key)
        if cached is not None:
            # True LRU: a hit refreshes recency, so a hot frequency
            # revisited by an adaptive sweep is the *last* to go.
            self._omega_cache.move_to_end(key)
            self.stats.hit("shifted-integrals")
            return cached
        self.stats.miss("shifted-integrals")
        n = self.disc.n_states
        eye = np.eye(n)
        entries = []
        for group in self.structure.groups:
            a_shifted = group.a_matrix.astype(complex) - 1j * omega * eye
            phi_shifted = np.exp(-1j * omega * group.duration) * group.phi
            phi, i1, i2 = affine_step_integrals(
                a_shifted, group.duration, phi=phi_shifted)
            norm_h = float(np.linalg.norm(a_shifted, 1) * group.duration)
            entries.append((phi, i1, i2, a_shifted, norm_h))
        while len(self._omega_cache) >= self._omega_cache_limit:
            self._omega_cache.popitem(last=False)
            self.stats.evict("shifted-integrals")
        self._omega_cache[key] = entries
        return entries

    # -- the fast periodic solve --------------------------------------------

    def solve_shifted(self, omega, segment_forcing, solver="direct",
                      ridge=FIXED_POINT_RIDGE, condition_limit=None):
        """Fast periodic steady state of ``dv/dt = (A−jω)v + f``.

        Drop-in equivalent of
        :func:`repro.lptv.periodic_solve.periodic_steady_state` (same
        arguments, same :class:`PeriodicSolution`, same condition-limit
        and solver semantics) that reuses every frequency-independent
        cached quantity; see the module docstring for the identities.
        """
        disc = self.disc
        struct = self.structure
        n = disc.n_states
        forcing = np.asarray(segment_forcing)
        n_seg = len(disc.segments)
        if forcing.shape != (n_seg, 2, n):
            raise ReproError(
                f"segment forcing must have shape "
                f"({n_seg}, 2, {n}), got {forcing.shape}")
        omega = float(omega)
        entries = self.shifted_integrals(omega)

        # Per-segment forcing integrals, batched per group:
        #   g_k = I1 f0_k + I2 (f1_k − f0_k)/h.
        g_seg = np.empty((n_seg, n), dtype=complex)
        for group, (_phi, i1, i2, _a, _nh) in zip(struct.groups, entries):
            idx = group.indices
            f0 = forcing[idx, 0]
            slope = (forcing[idx, 1] - f0) / group.duration
            g_seg[idx] = f0 @ i1.T + slope @ i2.T

        # One-period affine map: M_ω = e^{-jωT} M_0 (scalar identity) and
        # g_ω = Σ_k e^{-jω(T − t_end_k)} R_k g_k (batched suffix products).
        phase_total = np.exp(-1j * omega * disc.period)
        m_acc = phase_total * self.monodromy.astype(complex)
        tail_phase = np.exp(-1j * omega * (disc.period - struct.t_end))
        g_acc = np.einsum("kij,kj->i", struct.suffix,
                          tail_phase[:, None] * g_seg)

        condition = fixed_point_condition(m_acc)
        if solver == "direct":
            if condition_limit is not None and condition > condition_limit:
                logger.info(
                    "cached periodic solve rejected at omega=%.6g: "
                    "cond(I - M) = %.3g > %.3g", omega, condition,
                    condition_limit)
                raise SingularMatrixError(
                    f"fixed-point system (I - M) is ill-conditioned: "
                    f"cond = {condition:.3g} exceeds limit "
                    f"{condition_limit:.3g} at omega = {omega:.6g} rad/s")
            v0 = solve_linear_fixed_point(m_acc, g_acc)
        elif solver == "lstsq":
            v0 = solve_regularized_fixed_point(m_acc, g_acc, ridge=ridge)
        else:
            raise ReproError(f"unknown periodic solver {solver!r}; "
                             "expected 'direct' or 'lstsq'")

        # One lean sequential pass for the trace (the recursion is
        # inherently ordered); everything derivable from the trace —
        # derivatives, period integral — is batched per group below.
        seg_phase = np.exp(-1j * omega * struct.durations)
        phi_stack = struct.phi_stack
        has_jump = struct.has_jump
        jumps = struct.jumps
        pre = np.empty((n_seg + 1, n), dtype=complex)
        post = np.empty((n_seg + 1, n), dtype=complex)
        pre[0] = v0
        post[0] = v0
        v = v0
        for k in range(n_seg):
            v = seg_phase[k] * (phi_stack[k] @ v) + g_seg[k]
            pre[k + 1] = v
            if has_jump[k]:
                v = jumps[k] @ v
            post[k + 1] = v

        dpre = np.empty((n_seg + 1, n), dtype=complex)
        dpost = np.empty((n_seg + 1, n), dtype=complex)
        integral = np.zeros(n, dtype=complex)
        for group, (_phi, _i1, _i2, a_shifted, norm_h) in zip(
                struct.groups, entries):
            idx = group.indices
            h = group.duration
            # One-sided derivatives at the segment ends, batched.
            dpost[idx] = post[idx] @ a_shifted.T + forcing[idx, 0]
            dpre[idx + 1] = pre[idx + 1] @ a_shifted.T + forcing[idx, 1]
            # Period integral of v: per segment,
            #   A_ω ∫v dt = v(end) − v(start) − ∫f dt,
            # summed over the group *before* the single resolvent solve
            # (linearity); the derivative-corrected trapezoid covers the
            # near-singular regime, exactly as the reference path does.
            f_int = 0.5 * h * (forcing[idx, 0] + forcing[idx, 1])
            trapezoid = np.sum(
                0.5 * h * (post[idx] + pre[idx + 1])
                + h * h / 12.0 * (dpost[idx] - dpre[idx + 1]), axis=0)
            if norm_h > _RESOLVENT_NORM_THRESHOLD:
                rhs = np.sum(pre[idx + 1] - post[idx] - f_int, axis=0)
                try:
                    integral = integral + checked_solve(
                        a_shifted, rhs,
                        context="segment integral resolvent")
                except SingularMatrixError:
                    integral = integral + trapezoid
            else:
                integral = integral + trapezoid
        dpost[-1] = dpost[0]
        return PeriodicSolution(grid=disc.grid, pre=pre, post=post,
                                dpre=dpre, dpost=dpost, integral=integral,
                                condition=condition, solver=solver)

    def solve_batched(self, omegas, segment_forcing, condition_limit=None,
                      recorder=None):
        """Frequency-batched periodic steady state for a whole ω-block.

        Evaluates every frequency of ``omegas`` (1-D, rad/s, finite)
        through the spectral kernel of :mod:`repro.mft.spectral`:
        eigenbases once per segment group, scalar φ-functions stacked
        over all frequencies, one batched ``(I − e^{-jωT}M₀)`` solve.
        Returns a :class:`~repro.mft.spectral.BatchedSolveResult`; the
        ``ok`` mask (condition gate, solve failures) tells the engine
        which frequencies to rerun through the per-ω fallback chain.
        """
        from .spectral import solve_spectral_batch
        return solve_spectral_batch(self, omegas, segment_forcing,
                                    condition_limit=condition_limit,
                                    recorder=recorder)

    # -- parameter-family support (DESIGN.md §12) ---------------------------

    @property
    def dynamics_key(self):
        """Identity of this context's dynamics (shared segment structure).

        Two contexts with equal ``dynamics_key`` share the *same*
        ``A``-matrix structure object — propagators, suffix products,
        spectral eigenbases, shifted-integral cache — so the
        parameter-batched kernel can stack their forcing rows into one
        solve.  Derived intensity-scaled contexts share their parent's
        structure by reference and therefore its key.
        """
        return id(self.structure)

    def derive_intensity_scaled(self, scales, system=None):
        """A context whose noise PSDs are scaled, sharing all dynamics work.

        ``scales`` is a scalar PSD multiplier or a per-source array (one
        entry per noise column).  The derived context shares this
        context's structure, monodromy, spectral eigenbases, and
        shifted-integral cache *by reference* — the MFT pipeline is
        linear in ``B Bᵀ``, so only the Gramians, ``B`` columns, and
        forcing pairs are restacked (a scalar multiply for a uniform
        scale, a per-source Gramian sum otherwise).  This is what makes
        an intensity-only corner nearly free next to its dynamics root.

        ``system`` optionally carries the matching rescaled system (for
        fallback paths that rediscretize); defaults to the parent's.
        """
        return _DerivedIntensityContext(self, scales, system=system)

    # -- misc ---------------------------------------------------------------

    @classmethod
    def for_system(cls, system, segments_per_phase=64):
        """Registry-backed context for ``(system, density)``.

        Convenience front door to :func:`sweep_context_for` — the
        thread-safe, LRU-bounded module registry keyed by the content
        fingerprint of the system.
        """
        return sweep_context_for(system, segments_per_phase)

    def warm_up(self, l_row=None, sources=False):
        """Force every frequency-independent quantity to exist.

        Called before parallel dispatch so thread workers never race on
        lazy initialisation and process workers inherit the cached work
        through the fork/pickle instead of recomputing it. Idempotent
        with respect to :attr:`stats`: repeated warm-ups only *add*
        hit counts — the counters are never reset, so accumulated
        hit/miss history survives any number of warm-ups. With
        ``sources=True`` the per-source covariances (and, given
        ``l_row``, forcing pairs) of an attribution run are included.
        """
        _ = self.structure, self.covariance, self.monodromy
        if l_row is not None:
            self.forcing_pairs(l_row)
        if sources:
            for s in range(self.n_sources):
                if l_row is not None:
                    self.source_forcing_pairs(l_row, s)
                else:
                    self.source_covariance(s)
        return self

    def __repr__(self):
        built = sum(x is not None for x in
                    (self._disc, self._covariance, self._monodromy))
        return (f"SweepContext(segments_per_phase="
                f"{self.segments_per_phase!r}, built={built}/3, "
                f"{self.stats})")


class _DerivedIntensityContext(SweepContext):
    """Intensity-scaled view of a parent context.

    Built by :meth:`SweepContext.derive_intensity_scaled`; see there for
    the sharing contract.  The uniform-scalar fast path exploits strict
    linearity: ``forcing = α² · parent_forcing`` exactly, so a uniform
    corner costs one array multiply per cached quantity.  Per-source
    scales recombine the parent's exactly-conservative per-source
    Gramian split (``Σ_s G_s = G_total``), so equal per-source scales
    reproduce the uniform path to summation rounding.
    """

    def __init__(self, parent, scales, system=None):
        scale_arr = np.atleast_1d(np.asarray(scales, dtype=float))
        if scale_arr.ndim != 1 or scale_arr.size == 0:
            raise ReproError(
                f"intensity scales must be a scalar or 1-D array, got "
                f"shape {np.asarray(scales).shape}")
        if not np.all(np.isfinite(scale_arr)) or not np.all(scale_arr > 0):
            raise ReproError(
                "intensity scales must be finite and positive, got "
                f"{scale_arr}")
        self.parent = parent
        self.system = system if system is not None else parent.system
        self.segments_per_phase = parent.segments_per_phase
        self.stats = CacheStats()
        self._scales = scale_arr
        self._uniform = float(scale_arr[0]) if scale_arr.size == 1 else None
        # Dynamics work shared by reference (the point of the exercise):
        # same A matrices → same structure, monodromy, eigenbases, and
        # shifted step integrals.  Forcing the parent's lazy properties
        # here keeps ``dynamics_key`` stable across derivations.
        self._structure = parent.structure
        self._monodromy = parent.monodromy
        self._omega_cache = parent._omega_cache
        self._omega_cache_limit = parent._omega_cache_limit
        self._spectral = None  # delegated to the parent via the property
        # Intensity-dependent quantities are rebuilt lazily (cheaply).
        self._disc = None
        self._covariance = None
        self._forcing = {}
        self._source_discs = {}
        self._source_covariances = {}
        self._source_forcing = {}

    def _per_source_scales(self):
        """The scale vector broadcast to one entry per noise source."""
        n_src = self.parent.n_sources
        if self._uniform is not None:
            return np.full(n_src, self._uniform)
        if self._scales.size != n_src:
            raise ReproError(
                f"{self._scales.size} intensity scales for a system "
                f"with {n_src} noise sources")
        return self._scales

    @property
    def disc(self):
        """Parent discretization with ``B``/Gramians intensity-rescaled."""
        if self._disc is not None:
            self.stats.hit("disc")
            return self._disc
        self.stats.miss("disc")
        parent_disc = self.parent.disc
        if self._uniform is not None:
            scale = self._uniform
            amplitude = np.sqrt(scale)
            segments = [replace(seg, b_matrix=seg.b_matrix * amplitude,
                                gramian=seg.gramian * scale)
                        for seg in parent_disc.segments]
        else:
            scales = self._per_source_scales()
            amplitude = np.sqrt(scales)
            source_discs = [self.parent.source_disc(s)
                            for s in range(scales.size)]
            segments = []
            # scn: ignore[SCN008] - bounded per-segment array restack of
            # cached parent Gramians; no solves or integrations inside
            for k, seg in enumerate(parent_disc.segments):
                gram = np.add.reduce([
                    scales[s] * source_discs[s].segments[k].gramian
                    for s in range(scales.size)])
                segments.append(replace(
                    seg, b_matrix=seg.b_matrix * amplitude[None, :],
                    gramian=gram))
        self._disc = replace(parent_disc, segments=segments)
        return self._disc

    @property
    def spectral_bases(self):
        """The parent's eigenbases — dynamics are identical by design."""
        return self.parent.spectral_bases

    def forcing_pairs(self, l_row):
        """Intensity-scaled forcing by linearity in the noise PSDs."""
        l_row = np.asarray(l_row, dtype=float)
        key = l_row.tobytes()
        cached = self._forcing.get(key)
        if cached is not None:
            self.stats.hit("forcing")
            return cached
        self.stats.miss("forcing")
        if self._uniform is not None:
            pairs = self._uniform * self.parent.forcing_pairs(l_row)
        else:
            scales = self._per_source_scales()
            pairs = np.add.reduce([
                scales[s] * self.parent.source_forcing_pairs(l_row, s)
                for s in range(scales.size)])
        self._forcing[key] = pairs
        return pairs

    def source_disc(self, source):
        """Parent's single-source discretization, intensity-rescaled."""
        source = int(source)
        cached = self._source_discs.get(source)
        if cached is not None:
            self.stats.hit("source-disc")
            return cached
        self.stats.miss("source-disc")
        scale = float(self._per_source_scales()[source])
        parent_sd = self.parent.source_disc(source)
        amplitude = np.sqrt(scale)
        segments = [replace(seg, b_matrix=seg.b_matrix * amplitude,
                            gramian=seg.gramian * scale)
                    for seg in parent_sd.segments]
        self._source_discs[source] = replace(parent_sd, segments=segments)
        return self._source_discs[source]

    def source_forcing_pairs(self, l_row, source):
        """One source's forcing, scaled by that source's PSD multiplier."""
        l_row = np.asarray(l_row, dtype=float)
        source = int(source)
        key = (source, l_row.tobytes())
        cached = self._source_forcing.get(key)
        if cached is not None:
            self.stats.hit("source-forcing")
            return cached
        self.stats.miss("source-forcing")
        scale = float(self._per_source_scales()[source])
        pairs = scale * self.parent.source_forcing_pairs(l_row, source)
        self._source_forcing[key] = pairs
        return pairs

    def warm_up(self, l_row=None, sources=False):
        """Warm through the parent, then the cheap scaled overlays.

        Deliberately skips the base class's covariance warm-up: the
        batched path reaches covariance only through the (overridden,
        linearly scaled) forcing pairs, and solving a fresh periodic
        Lyapunov equation per intensity corner would forfeit exactly
        the sharing this class exists for.
        """
        need_sources = sources or self._uniform is None
        self.parent.warm_up(l_row=l_row, sources=need_sources)
        _ = self.structure, self.monodromy
        if l_row is not None:
            self.forcing_pairs(l_row)
        if sources and l_row is not None:
            for s in range(self.n_sources):
                self.source_forcing_pairs(l_row, s)
        return self

    def __repr__(self):
        kind = ("uniform" if self._uniform is not None
                else f"{self._scales.size}-source")
        return (f"_DerivedIntensityContext({kind}, "
                f"parent={self.parent!r})")


# -- registry ---------------------------------------------------------------

#: Bounded LRU module registry of contexts, keyed by system fingerprint.
#: Guarded by :data:`_REGISTRY_LOCK` — thread sweep backends and several
#: analyzers constructed concurrently all pass through here.
_REGISTRY = OrderedDict()
_REGISTRY_LIMIT = 32
_REGISTRY_LOCK = threading.Lock()
#: Registry-level counters (the per-context stats live on the context).
registry_stats = CacheStats()


def discretization_fingerprint(system, segments_per_phase):
    """Content hash of everything that determines a discretization.

    Hashes the phase durations, state/noise/jump matrices, the output
    matrix, and the requested density — so two structurally identical
    systems share a context while *any* mutation (a different duty
    cycle, segment count, or component value) changes the key. Systems
    defined by callables (:class:`~repro.lptv.system.SampledLPTVSystem`)
    cannot be content-hashed and fall back to object identity.
    """
    digest = hashlib.sha256()
    digest.update(type(system).__name__.encode())
    digest.update(repr(segments_per_phase).encode())
    phases = getattr(system, "phases", None)
    if phases is None:
        digest.update(str(id(system)).encode())
        period = getattr(system, "period", None)
        if period is not None:
            digest.update(repr(float(period)).encode())
        return digest.hexdigest()
    for phase in phases:
        digest.update(phase.name.encode())
        digest.update(np.float64(phase.duration).tobytes())
        digest.update(np.ascontiguousarray(phase.a_matrix).tobytes())
        digest.update(np.ascontiguousarray(phase.b_matrix).tobytes())
        if phase.end_jump is not None:
            digest.update(np.ascontiguousarray(phase.end_jump).tobytes())
        digest.update(b"|")
    output = getattr(system, "output_matrix", None)
    if output is not None:
        digest.update(np.ascontiguousarray(output).tobytes())
    return digest.hexdigest()


def sweep_context_for(system, segments_per_phase=64, family=None,
                      build=None):
    """Context for ``(system, density)`` from the module registry.

    Returns the cached context when the fingerprint matches a previous
    call (counted as a registry hit) and builds + registers a fresh one
    otherwise.  The registry is a bounded LRU — a hit refreshes the
    entry's recency and the least-recently-used context is evicted at
    the limit — and every access holds :data:`_REGISTRY_LOCK`, so
    concurrent analyzers (thread sweep backends, parallel test workers)
    always agree on one context per fingerprint.

    ``family`` salts the key with a parameter-family hash
    (:meth:`repro.circuits.corners.ParameterGrid.family_hash`): a corner
    sweep's contexts — possibly intensity-derived, with rescaled
    Gramians — can then never be served to, or alias, a plain sweep of
    a system that fingerprints identically.  ``build`` supplies the
    context constructor on a miss (e.g. a closure deriving from a
    dynamics root); the default builds a fresh :class:`SweepContext`.
    """
    key = discretization_fingerprint(system, segments_per_phase)
    if family is not None:
        key = f"{key}:family={family}"
    with _REGISTRY_LOCK:
        context = _REGISTRY.get(key)
        if context is not None:
            _REGISTRY.move_to_end(key)
            registry_stats.hit("context")
            return context
        registry_stats.miss("context")
        if build is not None:
            context = build()
        else:
            context = SweepContext(system, segments_per_phase)
        while len(_REGISTRY) >= _REGISTRY_LIMIT:
            _REGISTRY.popitem(last=False)
            registry_stats.evict("context")
        _REGISTRY[key] = context
        return context


def clear_sweep_contexts():
    """Empty the registry (tests; long-lived processes reclaiming memory)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()
