"""General MFT collocation: J sample cycles + frequency-domain delay.

This is the textbook mixed-frequency-time formulation (Kundert, White,
Sangiovanni-Vincentelli): integrate *in the time domain* across single
clock cycles, and couple the cycle boundaries *in the frequency domain* of
the slow tone(s). For the noise problem the cycle map is affine,

    v_{m+1} = Phi v_m + g(θ_m),    θ_m = ω_s m T  (slow phase),

with the cycle forcing ``g`` known by its slow-tone Fourier coefficients
``g(θ) = Σ_h ĝ_h e^{jhθ}``. The envelope ansatz ``v(θ) = Σ_h c_h e^{jhθ}``
collocated at J distinct slow phases gives the block-linear system

    (D(T) ⊗ I_n − I_J ⊗ Phi) V = G

where ``D(T)`` is the delay matrix of :mod:`repro.mft.delay`. For a single
slow tone this reduces to the specialised fixed point used by
:class:`repro.mft.engine.MftNoiseAnalyzer` — the tests verify the two
paths agree to machine precision — while the general machinery also
handles multi-harmonic envelopes (e.g. noise forcing with several analysis
tones at once).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError, SingularMatrixError
from ..linalg.checked import checked_solve, condition_number
from ..tolerances import MFT_COLLOCATION_COND_LIMIT
from .delay import choose_sample_phases, delay_matrix, idft_matrix

logger = logging.getLogger(__name__)


@dataclass
class MftCollocationProblem:
    """An affine MFT boundary-value problem over sample cycles.

    Parameters
    ----------
    cycle_map:
        The one-cycle state propagator ``Phi`` (n×n, may be complex).
    forcing_coefficients:
        Mapping ``h -> ĝ_h`` (n-vectors): slow-tone Fourier coefficients
        of the per-cycle forcing.
    omega_slow:
        Slow tone ω_s [rad/s].
    period:
        Clock period T [s].
    harmonics:
        Envelope harmonics to retain, e.g. ``(-1, 0, 1)``. Every forcing
        harmonic must be included.
    sample_phases:
        Slow phases of the J sample cycles; defaults to equispaced.
    """

    cycle_map: np.ndarray
    forcing_coefficients: dict
    omega_slow: float
    period: float
    harmonics: tuple = (-1, 0, 1)
    sample_phases: np.ndarray | None = None

    def __post_init__(self):
        self.cycle_map = np.asarray(self.cycle_map, dtype=complex)
        n = self.cycle_map.shape[0]
        if self.cycle_map.shape != (n, n):
            raise ReproError("cycle map must be square")
        self.harmonics = tuple(int(h) for h in self.harmonics)
        if len(set(self.harmonics)) != len(self.harmonics):
            raise ReproError(f"duplicate harmonics: {self.harmonics}")
        for h in self.forcing_coefficients:
            if int(h) not in self.harmonics:
                raise ReproError(
                    f"forcing harmonic {h} not in envelope harmonics "
                    f"{self.harmonics}")
        if self.sample_phases is None:
            self.sample_phases = choose_sample_phases(self.harmonics)
        self.sample_phases = np.asarray(self.sample_phases, dtype=float)
        if self.sample_phases.size != len(self.harmonics):
            raise ReproError(
                "need exactly one sample cycle per envelope harmonic")

    @property
    def n_states(self):
        return self.cycle_map.shape[0]


@dataclass
class MftCollocationSolution:
    """Solution of an MFT collocation problem."""

    coefficients: dict
    samples: np.ndarray
    sample_phases: np.ndarray
    harmonics: tuple = field(default_factory=tuple)

    def envelope(self, theta):
        """Evaluate the envelope ``v(θ)`` from its Fourier coefficients."""
        total = np.zeros_like(next(iter(self.coefficients.values())))
        for h, c in self.coefficients.items():
            total = total + c * np.exp(1j * h * float(theta))
        return total


def solve_mft_collocation(problem):
    """Solve the affine MFT collocation system.

    Returns an :class:`MftCollocationSolution` with the envelope Fourier
    coefficients ``c_h`` and the envelope samples at the sample cycles.
    """
    n = problem.n_states
    j = len(problem.harmonics)
    phases = problem.sample_phases
    delay = delay_matrix(phases, problem.harmonics, 1.0,
                         problem.omega_slow * problem.period)
    # Note: delay_matrix(phases, harmonics, omega_slow, tau) shifts the slow
    # phase by omega_slow*tau; passing (1.0, ω_s T) keeps the phase shift
    # ω_s T while letting `phases` stay dimensionless slow phases.

    big = np.kron(delay, np.eye(n)) - np.kron(np.eye(j), problem.cycle_map)
    cond = condition_number(big)
    if not np.isfinite(cond) or cond > MFT_COLLOCATION_COND_LIMIT:
        logger.warning("MFT collocation system singular: cond = %.3g",
                       cond)
        raise SingularMatrixError(
            "MFT collocation system is singular — a slow-tone harmonic "
            "coincides with a Floquet multiplier of the cycle map "
            f"(condition number {cond:.3g})")
    rhs = np.zeros(j * n, dtype=complex)
    for idx, theta in enumerate(phases):
        g = np.zeros(n, dtype=complex)
        for h, coeff in problem.forcing_coefficients.items():
            g = g + np.asarray(coeff, dtype=complex) * np.exp(
                1j * int(h) * theta)
        rhs[idx * n:(idx + 1) * n] = g
    solution = checked_solve(
        big, rhs,
        context="MFT collocation system (a slow-tone harmonic coincides "
                "with a Floquet multiplier of the cycle map)")
    samples = solution.reshape(j, n)
    f_inv = idft_matrix(phases, problem.harmonics)
    coeff_mat = f_inv @ samples
    coefficients = {h: coeff_mat[k]
                    for k, h in enumerate(problem.harmonics)}
    return MftCollocationSolution(coefficients=coefficients,
                                  samples=samples, sample_phases=phases,
                                  harmonics=problem.harmonics)


def cycle_forcing_coefficient(disc, omega, forcing_pairs):
    """Fourier coefficient ``ĝ_1`` of the per-cycle cross-spectral forcing.

    For the (unfactored) cross-spectral equation the forcing over the
    cycle starting at slow phase θ is ``e^{jθ} ĝ`` with

        ĝ = ∫_0^T Phi(T, s) k(s) e^{jωs} ds

    computed here with the same segment-trapezoid quadrature as the
    specialised engine, so the two paths agree to rounding.
    """
    n = disc.n_states
    forcing = np.asarray(forcing_pairs)
    if forcing.shape != (len(disc.segments), 2, n):
        raise ReproError(
            f"forcing must have shape ({len(disc.segments)}, 2, {n})")
    g_acc = np.zeros(n, dtype=complex)
    t = 0.0
    # scn: ignore[SCN008] - one period's segment quadrature for a single
    # frequency; the sweep-level loop above this carries the budget gate
    for k, seg in enumerate(disc.segments):
        h = seg.duration
        phase_left = np.exp(1j * omega * t)
        phase_right = np.exp(1j * omega * (t + h))
        step = 0.5 * h * (seg.phi @ (forcing[k, 0] * phase_left)
                          + forcing[k, 1] * phase_right)
        g_acc = seg.phi @ g_acc + step
        if seg.jump is not None:
            g_acc = seg.jump @ g_acc
        t += h
    return g_acc


def mft_envelope_via_collocation(disc, omega, forcing_pairs,
                                 extra_harmonics=1):
    """Cross-spectral envelope via the *general* MFT machinery.

    Builds the one-cycle map and forcing coefficient, solves the
    collocation system with harmonics ``-extra..+extra`` (all but ``h=1``
    should come back numerically zero for single-tone forcing), and
    returns the ``h=1`` envelope coefficient — which equals the
    specialised engine's ``q(0)``.
    """
    phi_t = disc.monodromy().astype(complex)
    g_hat = cycle_forcing_coefficient(disc, omega, forcing_pairs)
    harmonics = tuple(range(-int(extra_harmonics), int(extra_harmonics) + 1))
    if 1 not in harmonics:
        raise ReproError("harmonic 1 must be included")
    problem = MftCollocationProblem(
        cycle_map=phi_t, forcing_coefficients={1: g_hat},
        omega_slow=omega, period=disc.period, harmonics=harmonics)
    solution = solve_mft_collocation(problem)
    return solution
