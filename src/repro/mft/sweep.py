"""Frequency-grid helpers for PSD sweeps.

Switched-capacitor spectra have structure at the clock harmonics (sinc
notches and folding peaks), so the grids here make it easy to resolve
those features without wasting points elsewhere.
"""

from __future__ import annotations

import logging

import numpy as np

from ..diagnostics.budget import as_budget
from ..errors import ReproError
from ..tolerances import PSD_FLOOR
from ..typing import FloatArray

logger = logging.getLogger(__name__)


def linear_grid(f_start: float, f_stop: float,
                n_points: int) -> FloatArray:
    """Inclusive linear frequency grid, shape ``(n_points,)`` [Hz]."""
    if f_stop <= f_start:
        raise ReproError(f"empty frequency range [{f_start}, {f_stop}]")
    if n_points < 2:
        raise ReproError("need at least 2 grid points")
    return np.linspace(float(f_start), float(f_stop), int(n_points))


def decade_grid(f_start: float, f_stop: float,
                points_per_decade: int = 20) -> FloatArray:
    """Logarithmic frequency grid with a fixed density per decade [Hz]."""
    if f_start <= 0.0 or f_stop <= f_start:
        raise ReproError(f"bad log range [{f_start}, {f_stop}]")
    decades = np.log10(f_stop / f_start)
    n = max(2, int(np.ceil(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), n)


def clock_harmonic_grid(f_clock, n_harmonics, points_per_interval=32,
                        f_start=None):
    """Linear grid refined around every clock harmonic up to n_harmonics.

    Returns a strictly increasing grid from ``f_start`` (default
    ``f_clock / points_per_interval``) to ``n_harmonics * f_clock`` with
    extra points clustered near each harmonic, where sinc notches and
    folding peaks live. The first point is always exactly the requested
    start — even when it falls between base points — and a start at or
    beyond ``n_harmonics * f_clock`` raises.
    """
    if f_clock <= 0.0 or n_harmonics < 1:
        raise ReproError("need a positive clock frequency and >=1 harmonic")
    start = (f_clock / points_per_interval if f_start is None
             else float(f_start))
    stop = n_harmonics * f_clock
    if not np.isfinite(start) or start < 0.0 or start >= stop:
        raise ReproError(
            f"f_start must be a finite frequency in [0, {stop:.6g}) Hz, "
            f"got {start!r}")
    base = np.linspace(0.0, stop, n_harmonics * points_per_interval + 1)
    extras = []
    for k in range(1, n_harmonics + 1):
        centre = k * f_clock
        extras.append(centre + f_clock * np.asarray(
            [-0.02, -0.01, -0.005, -0.002, 0.002, 0.005, 0.01, 0.02]))
    grid = np.unique(np.concatenate([base] + extras))
    grid = grid[(grid >= start) & (grid <= stop)]
    if grid.size == 0 or grid[0] > start:
        grid = np.insert(grid, 0, start)
    return grid


def adaptive_frequency_grid(psd_fn, f_start, f_stop, n_initial=16,
                            max_points=256, tol_db=0.5, budget=None):
    """Adaptively refine a grid until log-PSD is bisection-converged.

    ``psd_fn(f)`` returns the PSD at one frequency. Starting from a
    logarithmic seed grid, the interval whose midpoint PSD deviates most
    (in dB) from the log-log interpolation of its endpoints is bisected,
    until every deviation is below ``tol_db`` or ``max_points`` is
    reached. Returns ``(frequencies, psd_values)``.

    Non-finite samples (a failed frequency in a partial-failure sweep)
    are kept in the output but excluded from the refinement criterion, so
    one bad frequency cannot drive endless bisection around itself. An
    optional ``budget`` (:class:`~repro.diagnostics.budget.SweepBudget`
    or seconds) stops refinement — never mid-``psd_fn`` — when spent.
    """
    budget = as_budget(budget)
    budget.start()
    freqs = list(decade_grid(f_start, f_stop,
                             points_per_decade=max(
                                 2, n_initial // max(1, int(np.log10(
                                     f_stop / f_start))))))
    if len(freqs) < 2:
        freqs = [float(f_start), float(f_stop)]
    values = [float(psd_fn(f)) for f in freqs]

    def probe(k):
        """Midpoint deviation (dB) of interval k; caches the midpoint."""
        if not (np.isfinite(values[k]) and np.isfinite(values[k + 1])):
            # An endpoint failed: no meaningful interpolation to check,
            # and bisecting toward a failing frequency only multiplies
            # failures. Mark the interval converged.
            return 0.0, np.sqrt(freqs[k] * freqs[k + 1]), np.nan
        f_mid = np.sqrt(freqs[k] * freqs[k + 1])
        v_mid = float(psd_fn(f_mid))
        if not np.isfinite(v_mid):
            logger.warning("adaptive grid: psd_fn failed at midpoint "
                           "%.6g Hz; freezing the interval", f_mid)
            return 0.0, f_mid, v_mid
        interp = np.sqrt(max(values[k], PSD_FLOOR)
                         * max(values[k + 1], PSD_FLOOR))
        dev = abs(10.0 * np.log10(max(v_mid, PSD_FLOOR) / interp))
        return dev, f_mid, v_mid

    # One midpoint probe per interval, refreshed only where the grid
    # changed, so each psd_fn evaluation is used at most twice.
    probes = [probe(k) for k in range(len(freqs) - 1)]
    while len(freqs) < max_points:
        if budget.exceeded() is not None:
            logger.warning("adaptive grid refinement stopped at %d "
                           "points: %s", len(freqs), budget.exceeded())
            break
        k = int(np.argmax([p[0] for p in probes]))
        dev, f_mid, v_mid = probes[k]
        if dev < tol_db:
            break
        freqs.insert(k + 1, f_mid)
        values.insert(k + 1, v_mid)
        probes[k:k + 1] = [probe(k), probe(k + 1)]
    return np.asarray(freqs), np.asarray(values)
