"""Frequency-domain delay operators for MFT collocation.

The mixed-frequency-time method samples the slowly varying envelope of a
quasi-periodic signal at the starts of ``J`` clock cycles and enforces the
inter-cycle relation *in the frequency domain of the slow tone*: if the
envelope is the truncated Fourier series

    v(θ) = sum_h c_h e^{j h θ},     θ = ω_s t  (slow phase)

then advancing time by one clock period ``T`` multiplies coefficient ``h``
by ``e^{j h ω_s T}``. With samples at ``J = len(harmonics)`` distinct slow
phases the sample vector and the coefficient vector are related by an
(invertible) generalized DFT, and the *delay matrix*

    D(τ) = F^{-1} diag(e^{j h ω_s τ}) F

maps envelope samples to envelope samples a time ``τ`` later. This module
builds those operators; :mod:`repro.mft.bvp` assembles and solves the
collocation system.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..linalg.checked import checked_inv, condition_number
from ..tolerances import MFT_ALIASING_COND_LIMIT
from ..typing import ArrayLike, ComplexArray, FloatArray, IntArray


def dft_matrix(phases: ArrayLike, harmonics: ArrayLike) -> ComplexArray:
    """Evaluation matrix E with ``E[j, h] = e^{j harmonics[h] phases[j]}``.

    Maps Fourier coefficients (ordered like ``harmonics``) to samples at
    the given slow phases. Square and invertible when the phases are
    distinct modulo 2π and the harmonics are distinct.
    """
    phases = np.asarray(phases, dtype=float)
    harmonics = np.asarray(harmonics, dtype=int)
    if phases.size != harmonics.size:
        raise ReproError(
            f"need as many sample phases ({phases.size}) as harmonics "
            f"({harmonics.size}) for a square MFT system")
    return np.exp(1j * np.outer(phases, harmonics))


def idft_matrix(phases: ArrayLike, harmonics: ArrayLike) -> ComplexArray:
    """Inverse of :func:`dft_matrix` (samples -> coefficients)."""
    e = dft_matrix(phases, harmonics)
    cond = condition_number(e)
    if cond > MFT_ALIASING_COND_LIMIT:
        raise ReproError(
            f"MFT sample phases are nearly aliased (cond {cond:.3g}); "
            "choose sample cycles whose slow phases are well separated")
    return checked_inv(e, context="MFT generalized DFT", cond_limit=None)


def delay_matrix(phases: ArrayLike, harmonics: ArrayLike,
                 omega_slow: float, tau: float) -> ComplexArray:
    """Sample-domain delay operator ``D(τ)``.

    ``(D v)[j]`` is the envelope at slow phase ``phases[j] + ω_s τ`` given
    envelope samples ``v`` at ``phases`` — the frequency-domain half of
    the mixed-frequency-time method.
    """
    f_inv = idft_matrix(phases, harmonics)
    shift = np.exp(1j * np.asarray(harmonics, dtype=float)
                   * omega_slow * tau)
    e = dft_matrix(phases, harmonics)
    return e @ np.diag(shift) @ f_inv


def choose_sample_phases(harmonics: "IntArray | list[int]") -> FloatArray:
    """Equispaced slow phases, the canonical well-conditioned choice."""
    j = len(harmonics)
    return 2.0 * np.pi * np.arange(j) / j
