"""The mixed-frequency-time (MFT) noise engine — the DAC 2003 method.

The brute-force engine integrates the energy-spectral-density ODEs over
hundreds of clock cycles per frequency. The MFT engine observes that the
cross-spectral forcing is *quasi-periodic* with exactly two tones — the
clock and the analysis frequency — and solves directly for the
quasi-periodic steady state:

1. the periodic covariance is a discrete Lyapunov fixed point of the
   one-period map (:mod:`repro.noise.covariance`);
2. per analysis frequency, the cross-spectral envelope is the fixed point
   of a one-period *complex* affine map built from frequency-shifted
   segment propagators (``e^{-jωh} Phi`` — the propagators are shared
   across all frequencies);
3. the averaged PSD is a single quadrature over that one period.

:mod:`repro.mft.engine` implements the specialised two-tone path used by
all benchmarks; :mod:`repro.mft.bvp` implements the general J-sample-cycle
MFT collocation with a DFT delay operator (Kundert-style), which reduces
to the engine's fixed point for a single slow tone and is cross-validated
against it in the tests.
"""

from .engine import InstantaneousPsd, MftNoiseAnalyzer, mft_psd
from .corners import CornerBatchAnalyzer, CornerSweepResult, corner_psd_sweep
from .context import (
    CacheStats,
    SweepContext,
    clear_sweep_contexts,
    discretization_fingerprint,
    sweep_context_for,
)
from .executor import SweepExecutor
from .spectral import (
    BatchedSolveResult,
    GroupBasis,
    ParamBatchedSolveResult,
    build_group_bases,
    phi_scalar_integrals,
    solve_param_batched,
    solve_spectral_batch,
)
from .sweep import (
    adaptive_frequency_grid,
    clock_harmonic_grid,
    decade_grid,
    linear_grid,
)
from .bvp import MftCollocationProblem, solve_mft_collocation
from .delay import delay_matrix, dft_matrix, idft_matrix

__all__ = [
    "MftNoiseAnalyzer",
    "mft_psd",
    "InstantaneousPsd",
    "CacheStats",
    "SweepContext",
    "SweepExecutor",
    "BatchedSolveResult",
    "CornerBatchAnalyzer",
    "CornerSweepResult",
    "GroupBasis",
    "ParamBatchedSolveResult",
    "build_group_bases",
    "corner_psd_sweep",
    "phi_scalar_integrals",
    "solve_param_batched",
    "solve_spectral_batch",
    "sweep_context_for",
    "clear_sweep_contexts",
    "discretization_fingerprint",
    "decade_grid",
    "linear_grid",
    "clock_harmonic_grid",
    "adaptive_frequency_grid",
    "MftCollocationProblem",
    "solve_mft_collocation",
    "delay_matrix",
    "dft_matrix",
    "idft_matrix",
]
