"""Frequency-batched spectral evaluation kernel for PSD sweeps.

:meth:`~repro.mft.context.SweepContext.solve_shifted` already made the
per-frequency cost of a sweep one ``affine_step_integrals`` call per
segment group plus one dense ``(I − M_ω)`` solve — but still inside a
per-ω Python loop, paying O(n³) matrix work at every frequency.  This
module removes the loop.  The key observation is that the only genuinely
frequency-dependent matrices of the shifted dynamics ``A − jωI`` share
the *frequency-independent* eigenbasis of ``A``:

    A = V Λ V⁻¹   ⇒   A − jωI = V (Λ − jωI) V⁻¹

so with ``μ_i(ω) = λ_i − jω`` and ``z = μ h`` every per-frequency matrix
function collapses to elementwise scalar functions of ``z``:

    Φ_ω = V diag(e^{z}) V⁻¹
    I1(ω) = V diag(h φ1(z)) V⁻¹          φ1(z) = (e^z − 1)/z
    I2(ω) = V diag(h² φ2(z)) V⁻¹         φ2(z) = (e^z − 1 − z)/z²
    (A − jωI)⁻¹ r = V diag(1/μ) V⁻¹ r

Eigendecompose each segment group **once** (frequency-independent, via
:func:`repro.linalg.checked.eigensystem`), then evaluate the scalar
φ-functions for *all* ω at once as stacked ``(n_freq, n)`` arrays.  The
one-period fixed point uses the scalar identity ``M_ω = e^{-jωT} M₀``
(see :mod:`repro.mft.context`), so the solve becomes one batched
``repro.linalg.checked.batched_solve`` over the ``(n_freq, n, n)`` stack
``I − e^{-jωT} M₀``.  Per-ω cost drops from O(n³) Python-looped work to
O(n³)-once plus O(n²)-per-ω vectorized einsum kernels, and — just as
important at SC-circuit sizes — the Python interpreter overhead of the
per-segment recursion amortizes over the whole frequency block.

Numerics: round-tripping through the eigenbasis amplifies rounding by
~``cond(V)``, so each group's basis is gated on
:data:`~repro.tolerances.SPECTRAL_EIGENBASIS_COND_LIMIT`.  A defective
(Jordan-block) or ill-conditioned group falls back **per group** — not
per sweep — to the reference per-frequency ``affine_step_integrals``
path, preserving correctness at the cost of that group's batching; the
engine surfaces this as a severity-tagged diagnostics finding.  The
batched results agree with the per-ω reference to ≤ 1e-9 relative
(enforced by ``benchmarks/test_perf_regression.py`` and
``tests/test_mft_spectral.py``); the exact-reorder paths stay at 1e-12.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..backend import array_module
from ..errors import ReproError, SingularMatrixError
from ..linalg.checked import (
    batched_condition_number,
    batched_solve,
    checked_inv,
    condition_number,
    eigensystem,
)
from ..linalg.phi import SERIES_THRESHOLD, affine_step_integrals
from ..tolerances import SPECTRAL_EIGENBASIS_COND_LIMIT
from ..typing import ComplexArray, FloatArray

logger = logging.getLogger(__name__)

__all__ = [
    "GroupBasis",
    "BatchedSolveResult",
    "ParamBatchedSolveResult",
    "build_group_bases",
    "phi_scalar_integrals",
    "solve_spectral_batch",
    "solve_param_batched",
]

#: Mirrors ``_SERIES_TERMS`` of :mod:`repro.linalg.phi`: 12 terms give
#: full double precision below :data:`~repro.linalg.phi.SERIES_THRESHOLD`.
_SERIES_TERMS = 12


@dataclass
class GroupBasis:
    """Frequency-independent eigenbasis of one segment group.

    ``diagonalizable`` is False when the eigendecomposition failed or
    ``cond(V)`` exceeds the gate — that group must use the per-frequency
    reference integrals.  ``values``/``vectors``/``inverse`` are ``None``
    exactly when ``diagonalizable`` is False.
    """

    diagonalizable: bool
    condition: float
    values: ComplexArray | None = None
    vectors: ComplexArray | None = None
    inverse: ComplexArray | None = None
    reason: str = ""


@dataclass
class BatchedSolveResult:
    """Outcome of one frequency-batched periodic solve.

    ``integral[f]`` is the period integral of the steady-state trace at
    ``omegas[f]`` (complex, shape ``(n_freq, n)``); ``v0`` the fixed
    points; ``conditions`` the per-frequency ``cond(I − M_ω)``.  ``ok``
    masks the frequencies whose direct batched solve succeeded (finite
    result, condition gate passed) — the engine reruns the others
    through the reference fallback chain so failure semantics match the
    per-ω path exactly.  ``fallback_groups`` lists the segment-group
    indices that used the per-frequency path (defective eigenbasis).

    For a *stacked* solve (forcing of shape ``(R, S, 2, n)``, one row
    per forcing vector — attribution passes the total plus one row per
    noise source) ``integral`` and ``v0`` gain a leading ``R`` axis and
    ``ok`` masks a frequency only when **every** row solved (the rows
    share one LU factorization per frequency, so they fail together).
    """

    omegas: FloatArray
    integral: ComplexArray
    v0: ComplexArray
    conditions: FloatArray
    ok: np.ndarray
    fallback_groups: list = field(default_factory=list)
    solver: str = "spectral-batch"


def build_group_bases(groups) -> list:
    """Eigendecompose every segment group once; returns ``GroupBasis`` list.

    Gated on :data:`~repro.tolerances.SPECTRAL_EIGENBASIS_COND_LIMIT`:
    a group whose eigenvector matrix is singular, non-finite, or
    ill-conditioned beyond the gate is marked non-diagonalizable and
    later routed through the per-frequency reference path.
    """
    bases = []
    for index, group in enumerate(groups):
        try:
            values, vectors = eigensystem(
                group.a_matrix, context="spectral group eigenbasis")
        except SingularMatrixError as exc:
            bases.append(GroupBasis(
                diagonalizable=False, condition=float("inf"),
                reason=f"eigendecomposition failed: {exc}"))
            continue
        cond = condition_number(vectors)
        if not (np.all(np.isfinite(values))
                and cond <= SPECTRAL_EIGENBASIS_COND_LIMIT):
            bases.append(GroupBasis(
                diagonalizable=False, condition=float(cond),
                reason=(f"eigenbasis rejected: cond(V) = {cond:.3g} "
                        f"exceeds {SPECTRAL_EIGENBASIS_COND_LIMIT:.3g} "
                        "(defective or near-defective segment matrix)")))
            logger.info("spectral kernel: group %d falls back to the "
                        "per-frequency path (cond(V) = %.3g)", index, cond)
            continue
        inverse = checked_inv(vectors, context="spectral eigenbasis inverse",
                              cond_limit=None)
        bases.append(GroupBasis(
            diagonalizable=True, condition=float(cond), values=values,
            vectors=vectors, inverse=inverse))
    return bases


def phi_scalar_integrals(z: ComplexArray, h: float
                         ) -> "tuple[ComplexArray, ComplexArray]":
    """Elementwise diagonal factors ``(h φ1(z), h² φ2(z))`` of ``I1, I2``.

    ``z`` is any-shape complex (``z = (λ − jω) h``); both returns match
    its shape and are complex.  Small arguments use the same 12-term
    Taylor series as the matrix path in :mod:`repro.linalg.phi`
    (below :data:`~repro.linalg.phi.SERIES_THRESHOLD`, where the closed
    forms lose digits to cancellation); large arguments use the closed
    forms directly.
    """
    z = np.asarray(z, dtype=complex)
    small = np.abs(z) < SERIES_THRESHOLD
    safe = np.where(small, 1.0, z)
    exp_z = np.exp(safe)
    phi1 = (exp_z - 1.0) / safe
    phi2 = (exp_z - 1.0 - safe) / (safe * safe)
    # Taylor series, identical term recurrence to phi._series_integrals:
    # φ1 = Σ z^k/(k+1)!,  φ2 = Σ z^k/(k+2)!.
    term = np.ones_like(z)
    s1 = np.zeros_like(z)
    s2 = np.zeros_like(z)
    for k in range(_SERIES_TERMS):
        s1 = s1 + term / (k + 1)
        s2 = s2 + term / ((k + 1) * (k + 2))
        term = term * z / (k + 1)
    i1 = h * np.where(small, s1, phi1)
    i2 = (h * h) * np.where(small, s2, phi2)
    return i1, i2


def _group_norm_h(a_matrix, omegas, duration):
    """Vectorized ``‖A − jωI‖₁ · h`` for all ω, shape ``(n_freq,)``.

    The 1-norm is the max column absolute sum; only the diagonal entry
    of each column depends on ω, so the off-diagonal sums are computed
    once and the shifted diagonal contributes ``|A_jj − jω|``.
    """
    a = np.asarray(a_matrix)
    col_sums = np.sum(np.abs(a), axis=0)
    diag = np.diagonal(a)
    off_diag = col_sums - np.abs(diag)
    shifted_diag = np.abs(diag[None, :] - 1j * omegas[:, None])
    return np.max(off_diag[None, :] + shifted_diag, axis=1) * duration


def _lu_step_integrals(group, omegas, eye):
    """Batched mirror of the LU branch of ``affine_step_integrals``.

    Returns ``(I1, I2)`` as ``(n_freq, n, n)`` stacks via
    ``I1 = A_ω⁻¹(Φ_ω − I)`` and ``I2 = h I1 − A_ω⁻¹(h Φ_ω − I1)`` —
    the identical solves the per-ω reference performs, batched over the
    stack.  A frequency whose shifted matrix is exactly singular (the
    reference's substepping branch) falls back to
    :func:`affine_step_integrals` for that member.
    """
    h = group.duration
    a_stack = (group.a_matrix.astype(complex)[None, :, :]
               - 1j * omegas[:, None, None] * eye[None, :, :])
    phi_w = (np.exp(-1j * omegas * h)[:, None, None]
             * group.phi.astype(complex))
    i1, ok1 = batched_solve(a_stack, phi_w - eye,
                            context="batched affine step I1")
    correction, ok2 = batched_solve(a_stack, h * phi_w - i1,
                                    context="batched affine step I2")
    i2 = h * i1 - correction
    for fi in np.nonzero(~(ok1 & ok2))[0]:
        _phi, i1[fi], i2[fi] = affine_step_integrals(
            a_stack[fi], h, phi=phi_w[fi])
    return i1, i2


def _reference_group_integrals(group, omegas, forcing, g_seg):
    """Per-frequency fallback: fill ``g_seg`` for one defective group.

    ``forcing`` is the stacked ``(R, S, 2, n)`` form and ``g_seg`` the
    ``(R, n_freq, n_seg, n)`` output; the per-ω integrals are computed
    once and applied to every forcing row.
    """
    idx = group.indices
    h = group.duration
    n = group.a_matrix.shape[0]
    eye = np.eye(n)
    f0 = forcing[:, idx, 0]
    slope = (forcing[:, idx, 1] - f0) / h
    # scn: ignore[SCN008] - defective-eigenbasis rescue for one ω-block;
    # budget and fault seams gate at the executor chunk around the block
    for fi, omega in enumerate(omegas):
        a_shifted = group.a_matrix.astype(complex) - 1j * omega * eye
        phi_shifted = np.exp(-1j * omega * h) * group.phi
        _phi, i1, i2 = affine_step_integrals(a_shifted, h, phi=phi_shifted)
        g_seg[:, fi, idx] = f0 @ i1.T + slope @ i2.T


def solve_spectral_batch(context, omegas, segment_forcing,
                         condition_limit=None,
                         recorder=None) -> BatchedSolveResult:
    """Periodic steady state of ``dv/dt = (A−jω)v + f`` for all ω at once.

    Batched counterpart of
    :meth:`~repro.mft.context.SweepContext.solve_shifted`; see the
    module docstring for the identities.  ``omegas`` is a 1-D float
    array [rad/s] of finite frequencies; ``segment_forcing`` the usual
    ``(S, 2, n)`` endpoint pairs, or a stacked ``(R, S, 2, n)`` block of
    ``R`` independent forcing rows solved against **shared** per-ω
    matrix work (eigenbasis φ-integrals, one LU of ``I − e^{-jωT}M₀``
    with ``R`` right-hand sides, shared resolvent factorizations) —
    this is what keeps per-source attribution ~context-bound instead of
    ``n_sources×``.  With ``condition_limit`` given,
    frequencies whose ``cond(I − M_ω)`` exceeds it are *masked out*
    (``ok`` False) rather than raising — the engine reruns them through
    the per-frequency fallback chain, which reproduces the reference
    rejection and its fallback attempts exactly.

    With an enabled ``recorder`` (:class:`repro.obs.Recorder`) the
    kernel's stages — eigenbasis build, φ-integral stacking, batched
    fixed-point solve, trace recursion, period integral — become child
    spans of the caller's ``spectral.batch`` span.
    """
    if recorder is None:
        from ..obs import NULL_RECORDER
        recorder = NULL_RECORDER
    disc = context.disc
    struct = context.structure
    n = disc.n_states
    n_seg = len(disc.segments)
    forcing = np.asarray(segment_forcing)
    stacked = forcing.ndim == 4
    if not stacked:
        forcing = forcing[None]
    if forcing.shape[1:] != (n_seg, 2, n):
        raise ReproError(
            f"segment forcing must have shape ({n_seg}, 2, {n}) or "
            f"(R, {n_seg}, 2, {n}), got "
            f"{forcing.shape if stacked else forcing.shape[1:]}")
    n_rows = forcing.shape[0]
    omegas = np.asarray(omegas, dtype=float).reshape(-1)
    if not np.all(np.isfinite(omegas)):
        raise ReproError("batched solve frequencies must be finite "
                         "(filter non-finite inputs before the kernel)")
    n_freq = omegas.size
    # All heavy array math below dispatches through the active backend
    # (numpy today — bit-identical to direct numpy calls; see
    # :mod:`repro.backend` for the contract an accelerator must satisfy).
    xp = array_module()
    with recorder.span("spectral.eigenbasis"):
        bases = context.spectral_bases
    fallback_groups = [g for g, basis in enumerate(bases)
                       if not basis.diagonalizable]
    if fallback_groups:
        recorder.count("spectral.fallback_groups", len(fallback_groups))

    if n_freq == 0:
        empty_shape = (n_rows, 0, n) if stacked else (0, n)
        return BatchedSolveResult(
            omegas=omegas, integral=np.empty(empty_shape, dtype=complex),
            v0=np.empty(empty_shape, dtype=complex),
            conditions=np.empty(0, dtype=float),
            ok=np.empty(0, dtype=bool), fallback_groups=fallback_groups)

    # Per-segment forcing integrals g_k(ω) = I1(ω) f0 + I2(ω) slope,
    # batched over frequencies.  Regimes mirror the per-ω reference
    # (``affine_step_integrals``) so the two paths stay within the 1e-9
    # equivalence budget: below the series threshold the reference's
    # Taylor series and the eigenbasis scalar φ-series agree to rounding
    # (and the scalar path needs no per-ω matrix work at all); at or
    # above it the reference solves with the ill-conditioned ``A − jωI``
    # whose ~cond·eps error is *algorithm-specific*, so the batch runs
    # the very same LU through a stacked solve instead of the (more
    # accurate, but differently-rounded) eigenbasis division.
    with recorder.span("spectral.step-integrals", n_groups=len(bases)):
        g_seg = np.empty((n_rows, n_freq, n_seg, n), dtype=complex)
        eye_c = np.eye(n, dtype=complex)
        norm_h_groups = [_group_norm_h(group.a_matrix, omegas,
                                       group.duration)
                         for group in struct.groups]
        for g, (group, basis) in enumerate(zip(struct.groups, bases)):
            if not basis.diagonalizable:
                with recorder.span("spectral.group-fallback", group=g):
                    _reference_group_integrals(group, omegas, forcing,
                                               g_seg)
                continue
            idx = np.asarray(group.indices)
            h = group.duration
            f0 = forcing[:, idx, 0]
            slope = (forcing[:, idx, 1] - f0) / h
            small = norm_h_groups[g] < SERIES_THRESHOLD
            if np.any(small):
                rows = np.nonzero(small)[0]
                c0 = f0 @ basis.inverse.T
                cs = slope @ basis.inverse.T
                z = (basis.values[None, :] - 1j * omegas[rows, None]) * h
                i1d, i2d = phi_scalar_integrals(z, h)
                coeffs = (i1d[None, :, None, :] * c0[:, None, :, :]
                          + i2d[None, :, None, :] * cs[:, None, :, :])
                g_seg[:, rows[:, None], idx[None, :]] = (
                    coeffs @ basis.vectors.T)
            if not np.all(small):
                rows = np.nonzero(~small)[0]
                i1, i2 = _lu_step_integrals(group, omegas[rows], eye_c)
                g_seg[:, rows[:, None], idx[None, :]] = (
                    xp.einsum("fij,rsj->rfsi", i1, f0)
                    + xp.einsum("fij,rsj->rfsi", i2, slope))

    # One-period affine map, all frequencies at once:
    # M_ω = e^{-jωT} M₀ and g_ω = Σ_k e^{-jω(T − t_end_k)} R_k g_k.
    with recorder.span("spectral.solve", n=int(n_freq)):
        period = disc.period
        phase_total = xp.exp(-1j * omegas * period)
        monodromy = context.monodromy.astype(complex)
        eye = xp.eye(n, dtype=complex)
        m_stack = eye[None, :, :] - phase_total[:, None, None] * monodromy
        conditions = batched_condition_number(m_stack)
        tail_phase = xp.exp(-1j * omegas[:, None]
                            * (period - struct.t_end)[None, :])
        g_acc = xp.einsum("kij,rfkj->rfi", struct.suffix,
                          tail_phase[None, :, :, None] * g_seg)
        # One LU per frequency, all forcing rows as stacked RHS columns.
        v0_cols, ok = batched_solve(m_stack, xp.moveaxis(g_acc, 0, -1),
                                    context="batched fixed-point solve")
        v0 = xp.moveaxis(v0_cols, -1, 0)
        if condition_limit is not None:
            ok = ok & ~(conditions > condition_limit)

    # One sequential pass through the period (inherently ordered),
    # vectorized across the whole frequency block.
    with recorder.span("spectral.trace", n_segments=int(n_seg)):
        seg_phase = xp.exp(-1j * omegas[:, None]
                           * struct.durations[None, :])
        pre = np.empty((n_rows, n_freq, n_seg + 1, n), dtype=complex)
        post = np.empty((n_rows, n_freq, n_seg + 1, n), dtype=complex)
        pre[:, :, 0] = v0
        post[:, :, 0] = v0
        v = v0
        for k in range(n_seg):
            v = seg_phase[None, :, k, None] * (v @ struct.phi_stack[k].T) \
                + g_seg[:, :, k]
            pre[:, :, k + 1] = v
            if struct.has_jump[k]:
                v = v @ struct.jumps[k].T
            post[:, :, k + 1] = v

    # Period integral per group: resolvent solve (in the eigenbasis for
    # diagonalizable groups) above the stiffness threshold, derivative-
    # corrected trapezoid below it — per (group, ω), exactly mirroring
    # the per-frequency reference decision.
    from .context import _RESOLVENT_NORM_THRESHOLD
    with recorder.span("spectral.period-integral"):
        integral = np.zeros((n_rows, n_freq, n), dtype=complex)
        for g, group in enumerate(struct.groups):
            idx = group.indices
            h = group.duration
            a = group.a_matrix
            post_g = post[:, :, idx]
            pre_g = pre[:, :, idx + 1]
            dpost_g = (post_g @ a.T
                       - 1j * omegas[None, :, None, None] * post_g
                       + forcing[:, None, idx, 0])
            dpre_g = (pre_g @ a.T
                      - 1j * omegas[None, :, None, None] * pre_g
                      + forcing[:, None, idx, 1])
            trapezoid = np.sum(
                0.5 * h * (post_g + pre_g)
                + h * h / 12.0 * (dpost_g - dpre_g), axis=2)
            use_resolvent = norm_h_groups[g] > _RESOLVENT_NORM_THRESHOLD
            if not np.any(use_resolvent):
                integral += trapezoid
                continue
            f_int = 0.5 * h * (forcing[:, idx, 0] + forcing[:, idx, 1])
            rhs = np.sum(pre_g - post_g - f_int[:, None, :, :], axis=2)
            # Resolvent A_ω⁻¹ rhs through the same LAPACK LU the
            # reference path uses (not eigenbasis division): A_ω is
            # ill-conditioned exactly when the resolvent branch triggers
            # (stiff segment, ‖A‖h large, |μ_min| ~ ω), and a
            # cond(A_ω)·eps-sized solver difference would eat the 1e-9
            # equivalence budget.  One factorization per frequency
            # serves every forcing row as a stacked RHS column.
            a_shifted_stack = (a.astype(complex)[None, :, :]
                               - 1j * omegas[:, None, None]
                               * xp.eye(n, dtype=complex)[None, :, :])
            resolvent_cols, solve_ok = batched_solve(
                a_shifted_stack, xp.moveaxis(rhs, 0, -1),
                context="segment integral resolvent")
            resolvent = xp.moveaxis(resolvent_cols, -1, 0)
            good = use_resolvent & solve_ok
            integral += xp.where(good[None, :, None], resolvent, trapezoid)

    if not stacked:
        integral = integral[0]
        v0 = v0[0]
    return BatchedSolveResult(
        omegas=omegas, integral=integral, v0=v0, conditions=conditions,
        ok=ok, fallback_groups=fallback_groups)


@dataclass
class ParamBatchedSolveResult:
    """Outcome of one parameter-batched solve across a corner family.

    ``results[m]`` is the :class:`BatchedSolveResult` of parameter set
    ``m`` in input order, shaped exactly as if ``solve_spectral_batch``
    had been called for that parameter alone — the param batching is an
    *execution* strategy, not a result-shape change.  ``param_groups``
    lists the parameter indices that shared one stacked kernel call
    (same ``dynamics_key``); ``stacked_calls`` counts those calls (the
    speedup lever: 16 corners over 4 dynamics points → 4 calls).
    ``fallback_params`` lists parameters whose stacked call failed and
    were recomputed through the single-parameter PR-4 path.
    """

    omegas: FloatArray
    results: list
    param_groups: list
    stacked_calls: int
    fallback_params: list = field(default_factory=list)
    solver: str = "param-batch"


def solve_param_batched(contexts, omegas, forcings, condition_limit=None,
                        recorder=None) -> ParamBatchedSolveResult:
    """One batched periodic solve across M parameter sets × all ω.

    ``contexts[m]`` and ``forcings[m]`` describe parameter set ``m``:
    a :class:`~repro.mft.context.SweepContext` (possibly intensity-
    derived) and its ``(S, 2, n)`` — or stacked ``(R, S, 2, n)`` —
    forcing.  Parameter sets whose contexts share a ``dynamics_key``
    (identical segment structure: dynamics roots with their derived
    intensity corners) are concatenated along the forcing-row axis and
    solved through **one** :func:`solve_spectral_batch` call — one
    eigenbasis, one φ-integral stack, one LU per frequency serving every
    member's rows — then sliced back into per-parameter results.  This
    is the fallback lattice's outer level (param): a stacked call that
    raises falls back per member to the single-parameter path
    (recorded in ``fallback_params``); per-frequency failures inside a
    call are reported through each member's ``ok`` mask exactly as in
    the single-parameter kernel, for the engine's per-cell rescue.

    A single-member group degenerates to a plain
    ``solve_spectral_batch`` call with the member's own forcing, so
    ``M=1`` is bit-identical to the PR-4 path by construction.
    """
    if recorder is None:
        from ..obs import NULL_RECORDER
        recorder = NULL_RECORDER
    contexts = list(contexts)
    forcings = [np.asarray(f) for f in forcings]
    if len(contexts) != len(forcings):
        raise ReproError(
            f"{len(contexts)} contexts vs {len(forcings)} forcings")
    if not contexts:
        raise ReproError("param-batched solve needs at least one "
                         "parameter set")
    omegas = np.asarray(omegas, dtype=float).reshape(-1)

    # Group members by shared dynamics, preserving first-appearance
    # order on both the groups and their members.
    group_members: "dict[int, list[int]]" = {}
    for m, context in enumerate(contexts):
        group_members.setdefault(context.dynamics_key, []).append(m)
    param_groups = list(group_members.values())
    recorder.count("param_batch.groups", len(param_groups))

    results: list = [None] * len(contexts)
    fallback_params: list = []
    stacked_calls = 0
    for members in param_groups:
        stacked_calls += 1
        if len(members) == 1:
            m = members[0]
            results[m] = solve_spectral_batch(
                contexts[m], omegas, forcings[m],
                condition_limit=condition_limit, recorder=recorder)
            continue
        row_slices = []
        rows = []
        offset = 0
        for m in members:
            forcing = forcings[m]
            block = forcing if forcing.ndim == 4 else forcing[None]
            rows.append(block)
            row_slices.append((offset, offset + block.shape[0],
                               forcing.ndim == 4))
            offset += block.shape[0]
        try:
            with recorder.span("spectral.param-stack",
                               n_params=len(members), n_rows=offset):
                batch = solve_spectral_batch(
                    contexts[members[0]], omegas,
                    np.concatenate(rows, axis=0),
                    condition_limit=condition_limit, recorder=recorder)
        except ReproError:
            # Param-level fallback: rerun each member alone through the
            # single-parameter kernel (the PR-4 path).
            logger.info(
                "param-batched solve: stacked call over params %s "
                "failed; retrying per parameter", members)
            for m in members:
                fallback_params.append(m)
                results[m] = solve_spectral_batch(
                    contexts[m], omegas, forcings[m],
                    condition_limit=condition_limit, recorder=recorder)
            continue
        for m, (lo, hi, was_stacked) in zip(members, row_slices):
            integral = batch.integral[lo:hi]
            v0 = batch.v0[lo:hi]
            if not was_stacked:
                integral = integral[0]
                v0 = v0[0]
            results[m] = BatchedSolveResult(
                omegas=batch.omegas, integral=integral, v0=v0,
                conditions=batch.conditions, ok=batch.ok,
                fallback_groups=batch.fallback_groups)
    return ParamBatchedSolveResult(
        omegas=omegas, results=results, param_groups=param_groups,
        stacked_calls=stacked_calls, fallback_params=fallback_params)
