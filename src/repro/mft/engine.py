"""Two-tone MFT steady-state PSD engine.

For the output ``y = l^T x`` of the LPTV SDE, the cross-spectral vector
``K'(t) = E{x(t) Y(t,ω)^*}`` obeys ``dK'/dt = A K' + K(t) l e^{jωt}``
(companion draft eq. (13), generalised from one node to a linear output).
Substituting ``K' = q e^{jωt}`` removes the fast/slow two-tone structure
exactly::

    dq/dt = (A(t) − jωI) q + K(t) l

with everything on the right T-periodic. The averaged PSD is then

    S̄(ω) = (2/T) ∫_0^T Re( l^T q(t) ) dt

and the instantaneous PSD ``S(t, ω) = 2 Re(l^T q(t))``.

This module wires those three steps to the shared machinery:
:func:`repro.noise.covariance.periodic_covariance` for ``K``,
:func:`repro.lptv.periodic_solve.periodic_steady_state` for ``q``, and a
trapezoidal quadrature for the average. Runtime bookkeeping is kept so the
speedup benchmarks can compare against the brute-force engine.

Robustness: the analyzer preflight-validates the discretization at
construction (Floquet margin, ``cond(I − M)``, schedule, NaN/Inf) and
:meth:`MftNoiseAnalyzer.psd` runs each frequency through the bounded
graceful-degradation chain of :mod:`repro.diagnostics.fallback` — direct
solve, refined grid, regularized least squares, brute-force transient —
recording every attempt in ``PsdResult.info["diagnostics"]``. A failed
frequency yields NaN plus a failure record instead of aborting the sweep.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

from ..diagnostics.budget import as_budget
from ..diagnostics.fallback import (
    FallbackExhausted,
    FallbackPolicy,
    run_fallback_chain,
)
from ..diagnostics.preflight import preflight_report, require_preflight
from ..diagnostics.report import DiagnosticsReport, FrequencyFailure
from ..errors import ReproError
from ..lptv.periodic_solve import forcing_from_samples, periodic_steady_state
from ..noise.covariance import periodic_covariance
from ..noise.result import PsdResult
from ..tolerances import FIXED_POINT_RIDGE

logger = logging.getLogger(__name__)


@dataclass
class InstantaneousPsd:
    """Instantaneous PSD ``S(t, f)`` over one period at one frequency."""

    times: np.ndarray
    values: np.ndarray
    frequency: float

    def average(self):
        period = self.times[-1] - self.times[0]
        return float(np.trapezoid(self.values, self.times) / period)


class MftNoiseAnalyzer:
    """Steady-state noise analysis of a switched (LPTV) system.

    Parameters
    ----------
    system:
        A :class:`~repro.lptv.system.PiecewiseLTISystem` or
        :class:`~repro.lptv.system.SampledLPTVSystem`.
    segments_per_phase:
        Discretization density; for piecewise-LTI systems this only
        affects the cross-spectral quadrature grid (the propagators are
        exact). For sampled systems it also controls propagator accuracy.
    output_row:
        Row of the system's output matrix to analyse.
    preflight:
        Validate the discretization at construction. ERROR-level findings
        raise immediately (:class:`~repro.errors.StabilityError` for an
        unstable system, with the multipliers attached); warnings are
        kept on :attr:`preflight` and attached to every sweep result.
    fallback:
        ``True``/``None`` enables the graceful-degradation chain with
        default :class:`~repro.diagnostics.fallback.FallbackPolicy`
        settings, ``False`` disables it, and a ``FallbackPolicy``
        instance tunes it.
    budget:
        Default :class:`~repro.diagnostics.budget.SweepBudget` (or
        wall-clock seconds) applied to every :meth:`psd` sweep.
    """

    def __init__(self, system, segments_per_phase=64, output_row=0,
                 preflight=True, fallback=True, budget=None):
        if not hasattr(system, "discretize") or not hasattr(
                system, "output_matrix"):
            raise ReproError(
                "system must be an LPTV system (discretize() and "
                f"output_matrix), got {type(system).__name__}")
        self.system = system
        self.segments_per_phase = segments_per_phase
        self.output_row = output_row
        self._l_row = np.asarray(system.output_matrix)[output_row].astype(
            float)
        self._disc = system.discretize(segments_per_phase)
        self._covariance = None
        self._forcing = None
        self._refined = {}
        if fallback is True or fallback is None:
            self.fallback = FallbackPolicy()
        elif fallback is False:
            self.fallback = None
        else:
            self.fallback = fallback
        self.budget = budget
        if preflight:
            self.preflight = require_preflight(self._disc)
        else:
            self.preflight = DiagnosticsReport(context="preflight skipped")

    # -- covariance ---------------------------------------------------------

    @property
    def covariance(self):
        """Periodic steady-state covariance (computed once, cached)."""
        if self._covariance is None:
            self._covariance = periodic_covariance(self._disc)
        return self._covariance

    def average_output_variance(self):
        """Period-averaged variance of the analysed output."""
        return self.covariance.average_output_variance(self._l_row)

    # -- PSD ----------------------------------------------------------------

    def _forcing_pairs(self):
        if self._forcing is None:
            post, pre = self.covariance.forcing_samples(self._l_row)
            self._forcing = forcing_from_samples(self._disc, post, pre)
        return self._forcing

    def _psd_at(self, frequency, solver="direct",
                ridge=FIXED_POINT_RIDGE, condition_limit=None):
        """Single-frequency solve with explicit solver controls."""
        omega = 2.0 * np.pi * float(frequency)
        solution = periodic_steady_state(
            self._disc, omega, self._forcing_pairs(), solver=solver,
            ridge=ridge, condition_limit=condition_limit)
        integral = solution.integrate_dot()
        return float(2.0 * np.real(self._l_row @ integral)
                     / self._disc.period)

    def psd_at(self, frequency):
        """Averaged double-sided PSD at one frequency [Hz].

        This is the raw direct solve — it raises on failure. Sweeps that
        should survive per-frequency failures go through :meth:`psd`.
        """
        return self._psd_at(frequency)

    def psd(self, frequencies, on_failure="record", budget=None):
        """Averaged PSD over a frequency grid; returns a PsdResult.

        Each frequency runs through the graceful-degradation chain (when
        :attr:`fallback` is enabled). With ``on_failure="record"`` (the
        default) a frequency whose every strategy fails contributes NaN
        and a :class:`~repro.diagnostics.report.FrequencyFailure` in
        ``info["failures"]`` — the sweep itself always completes;
        ``on_failure="raise"`` aborts on the first exhausted chain. A
        ``budget`` (or the analyzer default) bounds the sweep wall
        clock: once spent, remaining frequencies are recorded as
        ``budget``-stage failures.
        """
        if on_failure not in ("record", "raise"):
            raise ReproError(
                f"on_failure must be 'record' or 'raise', "
                f"got {on_failure!r}")
        freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
        budget = as_budget(budget if budget is not None else self.budget)
        budget.start()
        report = DiagnosticsReport(context="mft sweep")
        report.merge(self.preflight)
        failures = []
        attempts_log = []
        values = np.full(freqs.shape, np.nan)
        t0 = time.perf_counter()
        for idx, f in enumerate(freqs):
            reason = budget.exceeded()
            if reason is not None:
                _record_budget_failures(freqs, idx, reason, failures,
                                        report)
                break
            if not np.isfinite(f):
                exc = ReproError(
                    f"analysis frequency must be finite, got {f!r}")
                if on_failure == "raise":
                    raise exc.attach_diagnostics(report)
                failures.append(FrequencyFailure(
                    frequency=float(f), index=idx, stage="input",
                    error=type(exc).__name__, message=str(exc)))
                report.error("non-finite-frequency", str(exc),
                             index=idx)
                logger.warning("recording NaN at index %d: %s", idx, exc)
                continue
            try:
                value, attempts = run_fallback_chain(
                    self._strategies(f, budget), f, report)
                attempts_log.extend(attempts)
                values[idx] = value
            except FallbackExhausted as exc:
                attempts_log.extend(exc.attempts)
                failures.append(FrequencyFailure(
                    frequency=float(f), index=idx, stage="solve",
                    error=type(exc).__name__, message=str(exc)))
                if on_failure == "raise":
                    raise exc.attach_diagnostics(report)
                logger.warning("recording NaN at %.6g Hz: %s", f, exc)
        runtime = time.perf_counter() - t0
        clipped = _clip_negative(freqs, values, report)
        n_fallback = sum(1 for a in attempts_log
                         if a.success and a.trigger != "primary")
        if n_fallback:
            logger.info("mft sweep finished: %d/%d frequencies needed "
                        "fallbacks, %d failed", n_fallback, freqs.size,
                        len(failures))
        return PsdResult(
            frequencies=freqs, psd=clipped, method="mft",
            output=self._output_name(),
            info={
                "runtime_seconds": runtime,
                "segments": len(self._disc.segments),
                "negative_clipped": int(np.sum(
                    np.isfinite(values) & (values < 0.0))),
                "worst_negative_psd": _worst_negative(values),
                "diagnostics": report,
                "failures": failures,
                "fallback_attempts": attempts_log,
            })

    # -- fallback machinery -------------------------------------------------

    def _strategies(self, frequency, budget):
        """Ordered (name, thunk) solve strategies for one frequency."""
        policy = self.fallback
        if policy is None:
            return [("mft-direct", lambda: self._psd_at(frequency))]
        strategies = [("mft-direct", lambda: self._psd_at(
            frequency, condition_limit=policy.condition_limit))]
        if policy.enable_refinement and np.isscalar(
                self.segments_per_phase):
            previous = int(self.segments_per_phase)
            for k in range(1, policy.max_refinements + 1):
                refined = min(int(self.segments_per_phase) * 2 ** k,
                              policy.segments_cap)
                if refined <= previous:
                    break
                previous = refined
                strategies.append((
                    f"mft-refine-{refined}",
                    lambda r=refined: self._refined_analyzer(r)._psd_at(
                        frequency,
                        condition_limit=policy.condition_limit)))
        if policy.enable_regularized:
            strategies.append(("mft-regularized", lambda: self._psd_at(
                frequency, solver="lstsq",
                ridge=policy.regularization)))
        if policy.enable_brute_force:
            strategies.append(("brute-force", lambda: self._brute_force_at(
                frequency, policy, budget)))
        return strategies

    def _refined_analyzer(self, segments):
        """A sibling analyzer on a denser grid (built once, cached)."""
        analyzer = self._refined.get(segments)
        if analyzer is None:
            logger.info("building refined discretization: %d segments "
                        "per phase", segments)
            analyzer = MftNoiseAnalyzer(
                self.system, segments, self.output_row,
                preflight=False, fallback=False)
            self._refined[segments] = analyzer
        return analyzer

    def _brute_force_at(self, frequency, policy, budget):
        """Terminal fallback: the transient engine at one frequency."""
        from ..noise.brute_force import brute_force_psd
        kwargs = dict(policy.brute_force_kwargs)
        kwargs.setdefault("segments_per_phase",
                          self.segments_per_phase
                          if np.isscalar(self.segments_per_phase) else 64)
        result = brute_force_psd(self.system, [frequency],
                                 output_row=self.output_row,
                                 budget=budget, **kwargs)
        return float(result.psd[0])

    # -- other observables --------------------------------------------------

    def instantaneous_psd(self, frequency):
        """``S(t, f)`` over one steady-state period at one frequency."""
        omega = 2.0 * np.pi * float(frequency)
        solution = periodic_steady_state(self._disc, omega,
                                         self._forcing_pairs())
        values = 2.0 * np.real(solution.post @ self._l_row)
        return InstantaneousPsd(times=solution.grid.copy(), values=values,
                                frequency=float(frequency))

    def cross_spectral_contributions(self, frequency):
        """Period-averaged ``2 Re(q_i)`` per state at one frequency.

        The draft highlights that the method exposes "the relative
        contributions of various portions of the circuit": the i-th entry
        is the cross-spectral density between state ``i`` and the output.
        The entries weighted by ``l`` sum to the output PSD.
        """
        omega = 2.0 * np.pi * float(frequency)
        solution = periodic_steady_state(self._disc, omega,
                                         self._forcing_pairs())
        integral = solution.integrate_dot()
        return 2.0 * np.real(integral) / self._disc.period

    def _output_name(self):
        names = getattr(self.system, "output_names", None)
        if names:
            return names[self.output_row]
        return f"row{self.output_row}"


def _clip_negative(freqs, values, report):
    """Clip negative PSD samples to zero, diagnosing the worst one.

    A negative averaged PSD is pure discretization error (the true
    quantity is nonnegative); its magnitude measures how coarse the
    cross-spectral quadrature grid is.
    """
    finite = np.isfinite(values)
    negative = finite & (values < 0.0)
    if np.any(negative):
        worst_idx = int(np.argmin(np.where(negative, values, 0.0)))
        worst = float(values[worst_idx])
        report.warning(
            "negative-psd-clipped",
            f"{int(np.sum(negative))} of {values.size} PSD samples were "
            f"negative and were clipped to zero (worst {worst:.3g} "
            f"V^2/Hz at {freqs[worst_idx]:.6g} Hz); the discretization "
            "is likely too coarse — increase segments_per_phase",
            count=int(np.sum(negative)), worst_value=worst,
            worst_frequency=float(freqs[worst_idx]))
        logger.warning("clipped %d negative PSD samples (worst %.3g at "
                       "%.6g Hz)", int(np.sum(negative)), worst,
                       freqs[worst_idx])
    clipped = values.copy()
    clipped[negative] = 0.0
    return clipped


def _worst_negative(values):
    finite = np.isfinite(values)
    negative = finite & (values < 0.0)
    if not np.any(negative):
        return 0.0
    return float(values[negative].min())


def _record_budget_failures(freqs, start_idx, reason, failures, report):
    """Mark every frequency from ``start_idx`` on as budget-failed."""
    for k in range(start_idx, freqs.size):
        failures.append(FrequencyFailure(
            frequency=float(freqs[k]), index=k, stage="budget",
            error="BudgetExceededError", message=reason))
    report.error(
        "budget-exhausted",
        f"sweep budget spent before {freqs.size - start_idx} of "
        f"{freqs.size} frequencies: {reason}",
        skipped=freqs.size - start_idx, reason=reason)
    logger.warning("sweep budget spent: skipping %d frequencies (%s)",
                   freqs.size - start_idx, reason)


def mft_psd(system, frequencies, segments_per_phase=64, output_row=0,
            **kwargs):
    """One-call convenience wrapper around :class:`MftNoiseAnalyzer`.

    Keyword arguments (``preflight``, ``fallback``, ``budget``) are
    forwarded to the analyzer constructor.
    """
    analyzer = MftNoiseAnalyzer(system, segments_per_phase, output_row,
                                **kwargs)
    return analyzer.psd(frequencies)


# re-exported for backwards compatibility with earlier imports
__all__ = ["InstantaneousPsd", "MftNoiseAnalyzer", "mft_psd",
           "preflight_report"]
