"""Two-tone MFT steady-state PSD engine.

For the output ``y = l^T x`` of the LPTV SDE, the cross-spectral vector
``K'(t) = E{x(t) Y(t,ω)^*}`` obeys ``dK'/dt = A K' + K(t) l e^{jωt}``
(companion draft eq. (13), generalised from one node to a linear output).
Substituting ``K' = q e^{jωt}`` removes the fast/slow two-tone structure
exactly::

    dq/dt = (A(t) − jωI) q + K(t) l

with everything on the right T-periodic. The averaged PSD is then

    S̄(ω) = (2/T) ∫_0^T Re( l^T q(t) ) dt

and the instantaneous PSD ``S(t, ω) = 2 Re(l^T q(t))``.

This module wires those three steps to the shared machinery:
:func:`repro.noise.covariance.periodic_covariance` for ``K``,
:func:`repro.lptv.periodic_solve.periodic_steady_state` for ``q``, and a
trapezoidal quadrature for the average. Runtime bookkeeping is kept so the
speedup benchmarks can compare against the brute-force engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..lptv.periodic_solve import forcing_from_samples, periodic_steady_state
from ..noise.covariance import periodic_covariance
from ..noise.result import PsdResult


@dataclass
class InstantaneousPsd:
    """Instantaneous PSD ``S(t, f)`` over one period at one frequency."""

    times: np.ndarray
    values: np.ndarray
    frequency: float

    def average(self):
        period = self.times[-1] - self.times[0]
        return float(np.trapezoid(self.values, self.times) / period)


class MftNoiseAnalyzer:
    """Steady-state noise analysis of a switched (LPTV) system.

    Parameters
    ----------
    system:
        A :class:`~repro.lptv.system.PiecewiseLTISystem` or
        :class:`~repro.lptv.system.SampledLPTVSystem`.
    segments_per_phase:
        Discretization density; for piecewise-LTI systems this only
        affects the cross-spectral quadrature grid (the propagators are
        exact). For sampled systems it also controls propagator accuracy.
    output_row:
        Row of the system's output matrix to analyse.
    """

    def __init__(self, system, segments_per_phase=64, output_row=0):
        if not hasattr(system, "discretize") or not hasattr(
                system, "output_matrix"):
            raise ReproError(
                "system must be an LPTV system (discretize() and "
                f"output_matrix), got {type(system).__name__}")
        self.system = system
        self.segments_per_phase = segments_per_phase
        self.output_row = output_row
        self._l_row = np.asarray(system.output_matrix)[output_row].astype(
            float)
        self._disc = system.discretize(segments_per_phase)
        self._covariance = None
        self._forcing = None

    # -- covariance ---------------------------------------------------------

    @property
    def covariance(self):
        """Periodic steady-state covariance (computed once, cached)."""
        if self._covariance is None:
            self._covariance = periodic_covariance(self._disc)
        return self._covariance

    def average_output_variance(self):
        """Period-averaged variance of the analysed output."""
        return self.covariance.average_output_variance(self._l_row)

    # -- PSD ----------------------------------------------------------------

    def _forcing_pairs(self):
        if self._forcing is None:
            post, pre = self.covariance.forcing_samples(self._l_row)
            self._forcing = forcing_from_samples(self._disc, post, pre)
        return self._forcing

    def psd_at(self, frequency):
        """Averaged double-sided PSD at one frequency [Hz]."""
        omega = 2.0 * np.pi * float(frequency)
        solution = periodic_steady_state(self._disc, omega,
                                         self._forcing_pairs())
        integral = solution.integrate_dot()
        return float(2.0 * np.real(self._l_row @ integral)
                     / self._disc.period)

    def psd(self, frequencies):
        """Averaged PSD over a frequency grid; returns a PsdResult."""
        freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
        t0 = time.perf_counter()
        values = np.asarray([self.psd_at(f) for f in freqs])
        runtime = time.perf_counter() - t0
        clipped = np.maximum(values, 0.0)
        return PsdResult(
            frequencies=freqs, psd=clipped, method="mft",
            output=self._output_name(),
            info={
                "runtime_seconds": runtime,
                "segments": len(self._disc.segments),
                "negative_clipped": int(np.sum(values < 0.0)),
            })

    def instantaneous_psd(self, frequency):
        """``S(t, f)`` over one steady-state period at one frequency."""
        omega = 2.0 * np.pi * float(frequency)
        solution = periodic_steady_state(self._disc, omega,
                                         self._forcing_pairs())
        values = 2.0 * np.real(solution.post @ self._l_row)
        return InstantaneousPsd(times=solution.grid.copy(), values=values,
                                frequency=float(frequency))

    def cross_spectral_contributions(self, frequency):
        """Period-averaged ``2 Re(q_i)`` per state at one frequency.

        The draft highlights that the method exposes "the relative
        contributions of various portions of the circuit": the i-th entry
        is the cross-spectral density between state ``i`` and the output.
        The entries weighted by ``l`` sum to the output PSD.
        """
        omega = 2.0 * np.pi * float(frequency)
        solution = periodic_steady_state(self._disc, omega,
                                         self._forcing_pairs())
        integral = solution.integrate_dot()
        return 2.0 * np.real(integral) / self._disc.period

    def _output_name(self):
        names = getattr(self.system, "output_names", None)
        if names:
            return names[self.output_row]
        return f"row{self.output_row}"


def mft_psd(system, frequencies, segments_per_phase=64, output_row=0):
    """One-call convenience wrapper around :class:`MftNoiseAnalyzer`."""
    analyzer = MftNoiseAnalyzer(system, segments_per_phase, output_row)
    return analyzer.psd(frequencies)
