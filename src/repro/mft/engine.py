"""Two-tone MFT steady-state PSD engine.

For the output ``y = l^T x`` of the LPTV SDE, the cross-spectral vector
``K'(t) = E{x(t) Y(t,ω)^*}`` obeys ``dK'/dt = A K' + K(t) l e^{jωt}``
(companion draft eq. (13), generalised from one node to a linear output).
Substituting ``K' = q e^{jωt}`` removes the fast/slow two-tone structure
exactly::

    dq/dt = (A(t) − jωI) q + K(t) l

with everything on the right T-periodic. The averaged PSD is then

    S̄(ω) = (2/T) ∫_0^T Re( l^T q(t) ) dt

and the instantaneous PSD ``S(t, ω) = 2 Re(l^T q(t))``.

This module wires those three steps to the shared machinery:
:func:`repro.noise.covariance.periodic_covariance` for ``K``,
:func:`repro.lptv.periodic_solve.periodic_steady_state` for ``q``, and a
trapezoidal quadrature for the average. Runtime bookkeeping is kept so the
speedup benchmarks can compare against the brute-force engine.

Performance: by default the analyzer draws every frequency-independent
quantity — discretization, periodic covariance, forcing, monodromy,
suffix products — from a shared :class:`~repro.mft.context.SweepContext`
and solves each frequency through its batched fast path (``cache=False``
restores the uncached reference path; the two agree to rounding, see
``tests/test_sweep_equivalence.py``). :meth:`MftNoiseAnalyzer.psd_sweep`
additionally runs independent frequencies through a
:class:`~repro.mft.executor.SweepExecutor` (thread or process backends).

Robustness: the analyzer preflight-validates the discretization at
construction (Floquet margin, ``cond(I − M)``, schedule, NaN/Inf) and
:meth:`MftNoiseAnalyzer.psd` runs each frequency through the bounded
graceful-degradation chain of :mod:`repro.diagnostics.fallback` — direct
solve, refined grid, regularized least squares, brute-force transient —
recording every attempt in ``PsdResult.info["diagnostics"]``. A failed
frequency yields NaN plus a failure record instead of aborting the sweep.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

from ..diagnostics.budget import as_budget
from ..diagnostics.fallback import (
    FallbackExhausted,
    FallbackPolicy,
    run_fallback_chain,
)
from ..diagnostics.preflight import preflight_report, require_preflight
from ..diagnostics.report import DiagnosticsReport, FrequencyFailure
from ..errors import ReproError
from ..lptv.periodic_solve import forcing_from_samples, periodic_steady_state
from ..noise.covariance import periodic_covariance
from ..noise.result import PsdResult, clip_negative_psd, worst_negative_psd
from ..noise.solvers import resolve_solver
from ..obs import NULL_RECORDER, format_trace, span_summary
from ..resilience.faults import fire as _inject_fault
from ..tolerances import FIXED_POINT_RIDGE
from .context import CacheStats, SweepContext, sweep_context_for

logger = logging.getLogger(__name__)

def fold_cache_delta(recorder, before, after):
    """Fold a cache-stats delta into a recorder's counters.

    Emits ``cache.<kind>`` aggregates plus ``cache.<kind>.<category>``
    per-category counters so serial and parallel sweeps over the same
    grid report identical metric counts.
    """
    delta = CacheStats.delta(before, after)
    for kind in ("hits", "misses", "evictions"):
        diffs = delta[kind]
        total = sum(diffs.values())
        if total:
            recorder.count(f"cache.{kind}", total)
        for category, n in diffs.items():
            recorder.count(f"cache.{kind}.{category}", n)


@dataclass
class InstantaneousPsd:
    """Instantaneous PSD ``S(t, f)`` over one period at one frequency."""

    times: np.ndarray
    values: np.ndarray
    frequency: float

    def average(self):
        period = self.times[-1] - self.times[0]
        return float(np.trapezoid(self.values, self.times) / period)


class MftNoiseAnalyzer:
    """Steady-state noise analysis of a switched (LPTV) system.

    Parameters
    ----------
    system:
        A :class:`~repro.lptv.system.PiecewiseLTISystem` or
        :class:`~repro.lptv.system.SampledLPTVSystem`.
    segments_per_phase:
        Discretization density; for piecewise-LTI systems this only
        affects the cross-spectral quadrature grid (the propagators are
        exact). For sampled systems it also controls propagator accuracy.
    output_row:
        Row of the system's output matrix to analyse.
    preflight:
        Validate the discretization at construction. ERROR-level findings
        raise immediately (:class:`~repro.errors.StabilityError` for an
        unstable system, with the multipliers attached); warnings are
        kept on :attr:`preflight` and attached to every sweep result.
    fallback:
        ``True``/``None`` enables the graceful-degradation chain with
        default :class:`~repro.diagnostics.fallback.FallbackPolicy`
        settings, ``False`` disables it, and a ``FallbackPolicy``
        instance tunes it.
    budget:
        Default :class:`~repro.diagnostics.budget.SweepBudget` (or
        wall-clock seconds) applied to every :meth:`psd` sweep.
    cache:
        ``True`` (default) draws the frequency-independent work from the
        shared :class:`~repro.mft.context.SweepContext` registry and
        solves through its fast path; ``False`` recomputes everything
        locally through the reference solver (the pre-cache behaviour).
    context:
        An explicit :class:`~repro.mft.context.SweepContext` to draw
        from (its ``segments_per_phase`` takes precedence). Lets several
        engines — MFT, brute force, Monte Carlo — share one set of
        propagators and one covariance solve.
    recorder:
        An :class:`~repro.obs.Recorder` collecting spans and metrics
        from every stage of the analysis (default: the shared no-op
        recorder — tracing off, one attribute check per stage).

    All parameters after ``system`` are strictly keyword-only
    (see DESIGN.md §9).
    """

    def __init__(self, system, *, segments_per_phase=64,
                 output_row=0, preflight=True, fallback=True,
                 budget=None, cache=True, context=None,
                 recorder=None):
        if not hasattr(system, "discretize") or not hasattr(
                system, "output_matrix"):
            raise ReproError(
                "system must be an LPTV system (discretize() and "
                f"output_matrix), got {type(system).__name__}")
        self.system = system
        self.output_row = output_row
        if recorder is None:
            recorder = NULL_RECORDER
        elif not (hasattr(recorder, "span") and hasattr(recorder, "count")):
            raise ReproError(
                "recorder must be a repro.obs.Recorder (or None), got "
                f"{type(recorder).__name__}")
        self.recorder = recorder
        self._l_row = np.asarray(system.output_matrix)[output_row].astype(
            float)
        if context is not None:
            if not isinstance(context, SweepContext):
                raise ReproError(
                    "context must be a SweepContext, got "
                    f"{type(context).__name__}")
            self._context = context
        elif cache:
            self._context = sweep_context_for(system, segments_per_phase)
        else:
            self._context = None
        if self._context is not None:
            self.segments_per_phase = self._context.segments_per_phase
            self._disc = self._context.disc
        else:
            self.segments_per_phase = segments_per_phase
            self._disc = system.discretize(segments_per_phase)
        self._covariance = None
        self._forcing = None
        self._refined = {}
        # Per-source attribution mode: set by psd()/psd_sweep() around a
        # sweep (attribute_sources=), consumed by the inner sweep loops
        # and the executor (value_width, checkpoint key).
        self._attribution = False
        self._source_labels = None
        if fallback is True or fallback is None:
            self.fallback = FallbackPolicy()
        elif fallback is False:
            self.fallback = None
        else:
            self.fallback = fallback
        self.budget = budget
        if isinstance(preflight, DiagnosticsReport):
            # An already-computed report (e.g. shared across the derived
            # intensity corners of one dynamics root in a corner sweep) —
            # adopt it instead of re-validating the same discretization.
            self.preflight = preflight
        elif preflight:
            with self.recorder.span("mft.preflight"):
                self.preflight = require_preflight(self._disc)
        else:
            self.preflight = DiagnosticsReport(context="preflight skipped")

    # -- cache plumbing ------------------------------------------------------

    @property
    def context(self):
        """The shared :class:`SweepContext`, or ``None`` when uncached."""
        return self._context

    @property
    def cache_stats(self):
        """Hit/miss counters of the shared context (``None`` uncached)."""
        if self._context is None:
            return None
        return self._context.stats

    def warm_up(self):
        """Materialise every frequency-independent cached quantity.

        Called by the sweep executor before parallel dispatch so thread
        workers never race on lazy initialisation and forked process
        workers inherit the precomputed work instead of redoing it.
        In attribution mode the per-source covariances and forcing
        pairs are included — they are frequency-independent too.
        """
        self._forcing_pairs()
        if self._context is not None:
            self._context.warm_up(self._l_row, sources=self._attribution)
        return self

    # -- per-source attribution ---------------------------------------------

    @property
    def value_width(self):
        """Columns per frequency the sweep loops produce (1 + n_sources).

        The executor reads this to size its merge buffer and key its
        checkpoints; outside attribution mode it is 1 and the sweep
        values stay plain 1-D arrays.
        """
        if not self._attribution:
            return 1
        return 1 + self._context.n_sources

    def _resolve_source_labels(self, attribute_sources):
        """Labels for the budget rows from ``attribute_sources``.

        ``True`` falls back to positional ``source<k>`` names; a
        sequence must name every noise column of the system.
        """
        n_src = self._context.n_sources
        if attribute_sources is True:
            return [f"source{k}" for k in range(n_src)]
        labels = [str(label) for label in attribute_sources]
        if len(labels) != n_src:
            raise ReproError(
                f"attribute_sources names {len(labels)} sources but the "
                f"system has {n_src} noise columns")
        return labels

    class _AttributionMode:
        """Arm/disarm the analyzer's attribution state around a sweep."""

        def __init__(self, analyzer, attribute_sources):
            self.analyzer = analyzer
            self.attribute_sources = attribute_sources

        def __enter__(self):
            analyzer = self.analyzer
            if not self.attribute_sources:
                return analyzer
            if analyzer._context is None:
                raise ReproError(
                    "attribute_sources= needs the shared sweep context "
                    "for the per-source covariances; construct the "
                    "analyzer with cache=True (the default) or an "
                    "explicit context=")
            analyzer._source_labels = analyzer._resolve_source_labels(
                self.attribute_sources)
            analyzer._attribution = True
            return analyzer

        def __exit__(self, *exc_info):
            self.analyzer._attribution = False
            self.analyzer._source_labels = None
            return False

    def _psd_vector_at(self, frequency, solver="direct",
                       ridge=FIXED_POINT_RIDGE, condition_limit=None):
        """``[total, source_0, …]`` PSD at one frequency (attribution).

        Every entry comes from the same solver settings at the same ω —
        the shifted step integrals are shared through the per-ω cache —
        so the per-source values sum to the total by linearity of the
        periodic solve in its forcing (to rounding).
        """
        context = self._context
        omega = 2.0 * np.pi * float(frequency)
        period = self._disc.period
        out = np.empty(1 + context.n_sources)
        solution = context.solve_shifted(
            omega, self._forcing_pairs(), solver=solver, ridge=ridge,
            condition_limit=condition_limit)
        # Same expression shape as _psd_at (2*x/T, not (2/T)*x) so the
        # total column is bit-identical to an unattributed sweep.
        out[0] = float(2.0 * np.real(
            self._l_row @ solution.integrate_dot()) / period)
        for s in range(context.n_sources):
            solution = context.solve_shifted(
                omega, context.source_forcing_pairs(self._l_row, s),
                solver=solver, ridge=ridge,
                condition_limit=condition_limit)
            out[1 + s] = float(2.0 * np.real(
                self._l_row @ solution.integrate_dot()) / period)
        return out

    # -- covariance ---------------------------------------------------------

    @property
    def covariance(self):
        """Periodic steady-state covariance (computed once, cached)."""
        if self._context is not None:
            return self._context.covariance
        if self._covariance is None:
            self._covariance = periodic_covariance(self._disc)
        return self._covariance

    def average_output_variance(self):
        """Period-averaged variance of the analysed output."""
        return self.covariance.average_output_variance(self._l_row)

    # -- PSD ----------------------------------------------------------------

    def _forcing_pairs(self):
        if self._context is not None:
            return self._context.forcing_pairs(self._l_row)
        if self._forcing is None:
            post, pre = self.covariance.forcing_samples(self._l_row)
            self._forcing = forcing_from_samples(self._disc, post, pre)
        return self._forcing

    def _solve(self, omega, solver="direct", ridge=FIXED_POINT_RIDGE,
               condition_limit=None):
        """Periodic steady state of the shifted dynamics at one ω."""
        if self._context is not None:
            return self._context.solve_shifted(
                omega, self._forcing_pairs(), solver=solver, ridge=ridge,
                condition_limit=condition_limit)
        return periodic_steady_state(
            self._disc, omega, self._forcing_pairs(), solver=solver,
            ridge=ridge, condition_limit=condition_limit)

    def _psd_at(self, frequency, solver="direct",
                ridge=FIXED_POINT_RIDGE, condition_limit=None):
        """Single-frequency solve with explicit solver controls."""
        omega = 2.0 * np.pi * float(frequency)
        solution = self._solve(omega, solver=solver, ridge=ridge,
                               condition_limit=condition_limit)
        integral = solution.integrate_dot()
        return float(2.0 * np.real(self._l_row @ integral)
                     / self._disc.period)

    def psd_at(self, frequency):
        """Averaged double-sided PSD (V²/Hz) at one frequency [Hz].

        This is the raw direct solve — it raises on failure. Sweeps that
        should survive per-frequency failures go through :meth:`psd`.
        """
        with self.recorder.span("mft.solve", frequency=float(frequency)):
            return self._psd_at(frequency)

    def _sweep_raw(self, freqs, on_failure, budget, report, start=0):
        """Inner sweep loop shared by :meth:`psd` and the executor.

        Mutates ``report`` with per-frequency findings and returns
        ``(values, failures, attempts)`` with *unclipped* values, so the
        caller decides where negative-PSD clipping is diagnosed (once
        per sweep, not once per chunk).  ``start`` is the chunk's offset
        into the full sweep grid — unused here (frequencies are
        self-describing), but part of the sweep-callable signature so
        flattened-axis analyzers can recover cell identities.
        """
        del start  # cell identity is not positional for this analyzer
        rec = self.recorder
        failures = []
        attempts_log = []
        width = self.value_width
        values = np.full(freqs.shape if width == 1
                         else (freqs.size, width), np.nan)
        for idx, f in enumerate(freqs):
            reason = budget.exceeded()
            if reason is not None:
                _record_budget_failures(freqs, idx, reason, failures,
                                        report)
                break
            if not np.isfinite(f):
                exc = ReproError(
                    f"analysis frequency must be finite, got {f!r}")
                if on_failure == "raise":
                    raise exc.attach_diagnostics(report)
                failures.append(FrequencyFailure(
                    frequency=float(f), index=idx, stage="input",
                    error=type(exc).__name__, message=str(exc)))
                report.error("non-finite-frequency", str(exc),
                             index=idx)
                logger.warning("recording NaN at index %d: %s", idx, exc)
                continue
            rec.count("sweep.frequencies")
            _inject_fault("mft.solve", frequency=float(f))
            try:
                with rec.span("mft.solve", frequency=float(f)) as span:
                    value, attempts = run_fallback_chain(
                        self._strategies(f, budget), f, report,
                        recorder=rec)
                attempts_log.extend(attempts)
                values[idx] = value
                if rec.enabled:
                    rec.observe("mft.solve_seconds", span.duration)
            except FallbackExhausted as exc:
                attempts_log.extend(exc.attempts)
                failures.append(FrequencyFailure(
                    frequency=float(f), index=idx, stage="solve",
                    error=type(exc).__name__, message=str(exc)))
                if on_failure == "raise":
                    raise exc.attach_diagnostics(report)
                logger.warning("recording NaN at %.6g Hz: %s", f, exc)
        return values, failures, attempts_log

    def _sweep_batched(self, freqs, on_failure, budget, report, start=0):
        """Frequency-batched sweep of one ω-block (``spectral-batch``).

        Drop-in for :meth:`_sweep_raw` over one executor chunk: same
        ``(values, failures, attempts)`` return, same per-frequency NaN
        and failure-record semantics.  All finite frequencies of the
        block are solved at once through
        :meth:`~repro.mft.context.SweepContext.solve_batched`; the ones
        the batched direct solve rejects (condition gate, singular
        fixed point) are rerun individually through the reference
        fallback chain, so their attempt records and failures are
        exactly the per-ω path's.  The budget gates the block as a
        whole (dispatch semantics, matching the executor's chunk gate).
        ``start`` (the chunk offset) is accepted for sweep-callable
        signature compatibility and unused here.
        """
        del start
        if self._context is None:
            raise ReproError(
                "solver='spectral-batch' needs the shared sweep context; "
                "construct the analyzer with cache=True (the default) or "
                "an explicit context=")
        rec = self.recorder
        failures = []
        attempts_log = []
        width = self.value_width
        values = np.full(freqs.shape if width == 1
                         else (freqs.size, width), np.nan)
        reason = budget.exceeded()
        if reason is not None:
            _record_budget_failures(freqs, 0, reason, failures, report)
            return values, failures, attempts_log
        finite_mask = np.isfinite(freqs)
        for idx in np.nonzero(~finite_mask)[0]:
            exc = ReproError(
                f"analysis frequency must be finite, got {freqs[idx]!r}")
            if on_failure == "raise":
                raise exc.attach_diagnostics(report)
            failures.append(FrequencyFailure(
                frequency=float(freqs[idx]), index=int(idx), stage="input",
                error=type(exc).__name__, message=str(exc)))
            report.error("non-finite-frequency", str(exc), index=int(idx))
            logger.warning("recording NaN at index %d: %s", idx, exc)
        finite_idx = np.nonzero(finite_mask)[0]
        rescue_idx = []
        if finite_idx.size:
            rec.count("sweep.frequencies", int(finite_idx.size))
            _inject_fault("mft.batch",
                          first_frequency=float(freqs[finite_idx[0]]),
                          n=int(finite_idx.size))
            policy = self.fallback
            forcing = self._forcing_pairs()
            if width > 1:
                # Stacked solve: row 0 the total forcing, rows 1…n the
                # per-source forcings, sharing one LU per frequency.
                forcing = np.stack(
                    [forcing]
                    + [self._context.source_forcing_pairs(self._l_row, s)
                       for s in range(width - 1)])
            with rec.span("spectral.batch", n=int(finite_idx.size),
                          rows=int(width)):
                batch = self._context.solve_batched(
                    2.0 * np.pi * freqs[finite_idx], forcing,
                    condition_limit=(policy.condition_limit
                                     if policy is not None else None),
                    recorder=rec)
            psd = (2.0 * np.real(batch.integral @ self._l_row)
                   / self._disc.period)
            if width > 1:
                # (R, n_freq) → (n_freq, R) rows of [total, sources…].
                psd = psd.T
                ok = batch.ok & np.all(np.isfinite(psd), axis=1)
            else:
                ok = batch.ok & np.isfinite(psd)
            values[finite_idx[ok]] = psd[ok]
            rescue_idx = [int(i) for i in finite_idx[~ok]]
            if batch.fallback_groups:
                bases = self._context.spectral_bases
                report.warning(
                    "spectral-defective-basis",
                    f"{len(batch.fallback_groups)} of {len(bases)} segment "
                    "groups lack a usable eigenbasis; those groups used "
                    "the per-frequency reference integrals",
                    groups=list(batch.fallback_groups),
                    conditions=[bases[g].condition
                                for g in batch.fallback_groups],
                    reasons=[bases[g].reason
                             for g in batch.fallback_groups])
            report.info(
                "spectral-batch",
                f"spectral kernel solved {int(np.sum(ok))} of "
                f"{finite_idx.size} frequencies in one batch",
                n_batched=int(np.sum(ok)), n_rescued=len(rescue_idx))
        for idx in rescue_idx:
            f = freqs[idx]
            try:
                with rec.span("mft.solve", frequency=float(f),
                              rescued=True) as span:
                    value, attempts = run_fallback_chain(
                        self._strategies(f, budget), f, report,
                        recorder=rec)
                attempts_log.extend(attempts)
                values[idx] = value
                if rec.enabled:
                    rec.observe("mft.solve_seconds", span.duration)
            except FallbackExhausted as exc:
                attempts_log.extend(exc.attempts)
                failures.append(FrequencyFailure(
                    frequency=float(f), index=idx, stage="solve",
                    error=type(exc).__name__, message=str(exc)))
                if on_failure == "raise":
                    raise exc.attach_diagnostics(report)
                logger.warning("recording NaN at %.6g Hz: %s", f, exc)
        failures.sort(key=lambda failure: failure.index)
        return values, failures, attempts_log

    def psd(self, frequencies, on_failure="record", budget=None,
            solver=None, attribute_sources=False, **solver_options):
        """Averaged double-sided PSD (V²/Hz) over a frequency grid.

        Returns a :class:`~repro.noise.result.PsdResult`.

        ``attribute_sources`` — ``True`` or a sequence of per-source
        labels — additionally decomposes the PSD per noise-source
        column: the result carries a
        :class:`~repro.metrics.ContributionBudget` in
        ``result.info["budget"]`` (also via ``result.budget``) whose
        per-source rows sum to the total PSD at every frequency (NaN
        where the total is NaN — never dropped from one side only).
        Attribution reuses the shared sweep context, so the extra cost
        is bounded by the shared matrix work, not ``n_sources×``;
        supported for the ``mft``, ``spectral-batch``, and
        ``brute-force`` solvers.

        Each frequency runs through the graceful-degradation chain (when
        :attr:`fallback` is enabled). With ``on_failure="record"`` (the
        default) a frequency whose every strategy fails contributes NaN
        and a :class:`~repro.diagnostics.report.FrequencyFailure` in
        ``info["failures"]`` — the sweep itself always completes;
        ``on_failure="raise"`` aborts on the first exhausted chain. A
        ``budget`` (or the analyzer default) bounds the sweep wall
        clock: once spent, remaining frequencies are recorded as
        ``budget``-stage failures.

        ``solver`` picks the engine by name — one of
        :data:`repro.noise.solvers.SOLVERS` (``"mft"`` the default,
        ``"spectral-batch"`` the frequency-batched kernel,
        ``"brute-force"`` and ``"monte-carlo"`` the baselines, with
        extra ``solver_options`` forwarded to the delegate). The
        Monte-Carlo solver defines its own Welch frequency grid, so it
        requires ``frequencies=None``.
        """
        if on_failure not in ("record", "raise"):
            raise ReproError(
                f"on_failure must be 'record' or 'raise', "
                f"got {on_failure!r}")
        solver = resolve_solver(solver)
        if solver in ("brute-force", "monte-carlo"):
            return self._delegate_solver(solver, frequencies,
                                         budget=budget,
                                         on_failure=on_failure,
                                         attribute_sources=attribute_sources,
                                         **solver_options)
        if solver_options:
            raise ReproError(
                f"solver {solver!r} accepts no extra solver options, "
                f"got {sorted(solver_options)}")
        freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
        budget = as_budget(budget if budget is not None else self.budget)
        budget.start()
        report = DiagnosticsReport(context="mft sweep")
        report.merge(self.preflight)
        rec = self.recorder
        mark = rec.mark()
        stats = self.cache_stats
        stats_before = stats.snapshot() if (rec.enabled
                                            and stats is not None) else None
        sweep = (self._sweep_batched if solver == "spectral-batch"
                 else self._sweep_raw)
        t0 = time.perf_counter()
        with self._AttributionMode(self, attribute_sources):
            with rec.span("mft.sweep", solver=solver, n=int(freqs.size),
                          backend="inline"):
                values, failures, attempts_log = sweep(
                    freqs, on_failure, budget, report)
                raw_total, clipped, contribution = finalize_sweep_values(
                    self, freqs, values, report, solver=solver)
        runtime = time.perf_counter() - t0
        if rec.enabled:
            if stats_before is not None:
                fold_cache_delta(rec, stats_before, stats.snapshot())
            report.timeline = span_summary(rec, since=mark)
        n_fallback = sum(1 for a in attempts_log
                         if a.success and a.trigger != "primary")
        if n_fallback:
            logger.info("mft sweep finished: %d/%d frequencies needed "
                        "fallbacks, %d failed", n_fallback, freqs.size,
                        len(failures))
        return PsdResult(
            frequencies=freqs, psd=clipped, method="mft",
            output=self._output_name(),
            info={
                "runtime_seconds": runtime,
                "solver": solver,
                "segments": len(self._disc.segments),
                "negative_clipped": int(np.sum(
                    np.isfinite(raw_total) & (raw_total < 0.0))),
                "worst_negative_psd": worst_negative_psd(raw_total),
                "diagnostics": report,
                "failures": failures,
                "fallback_attempts": attempts_log,
                "budget": contribution,
                "cache_stats": (self.cache_stats.to_dict()
                                if self.cache_stats is not None else None),
            })

    def psd_sweep(self, frequencies, parallel=None, max_workers=None,
                  chunk_size=None, budget=None, on_failure="record",
                  solver=None, attribute_sources=False, retry=None,
                  faults=None, checkpoint=None, pool=None,
                  **solver_options):
        """Averaged double-sided PSD (V²/Hz) via a :class:`SweepExecutor`.

        ``parallel`` is ``None``/``"serial"`` for in-process execution,
        ``"thread"`` or ``"process"`` for concurrent chunks of
        independent frequencies. Per-frequency values, NaN semantics,
        failure records, and diagnostics match :meth:`psd`; the sweep
        ``budget`` gates the *dispatch* of new chunks (in-flight work is
        never killed). See :mod:`repro.mft.executor`.

        ``solver`` is the unified engine selector
        (:data:`repro.noise.solvers.SOLVERS`):

        * ``"mft"`` (default, also reachable as ``None``) — the
          per-frequency fallback-chain sweep;
        * ``"spectral-batch"`` — each chunk becomes one ω-block through
          the frequency-batched spectral kernel
          (:mod:`repro.mft.spectral`): eigenbases once per segment
          group, all frequencies of the block at once.  Values agree
          with the per-ω path to ≤ 1e-9 relative with identical NaN
          masks and failure records; requires the shared sweep context
          (``cache=True`` or an explicit ``context=``);
        * ``"brute-force"`` / ``"monte-carlo"`` — delegate to the
          baseline engines (serial only; extra ``solver_options`` are
          forwarded).

        ``attribute_sources`` decomposes the PSD per noise source
        exactly as in :meth:`psd`; the executor ships the widened
        per-chunk values through the same retry/fault/checkpoint
        machinery, so a NaN'd chunk is NaN in both the total and every
        budget row.

        Resilience (DESIGN.md §10): ``retry`` is a chunk-level
        :class:`~repro.resilience.retry.RetryPolicy` (or ``True`` /
        ``False``) governing requeues after worker crashes, timeouts,
        and unexpected chunk errors; ``faults`` arms a deterministic
        :class:`~repro.resilience.faults.FaultPlan` for chaos testing;
        ``checkpoint`` is a directory (or
        :class:`~repro.resilience.checkpoint.SweepCheckpoint`) that
        persists each completed chunk so an interrupted sweep resumes
        bit-identically.  All three are executor features and are
        rejected for the delegated baseline solvers.

        ``pool`` injects a shared pool provider (e.g.
        :class:`repro.service.WorkerPool`) so successive sweeps reuse
        warm workers instead of spawning a pool per call; requires a
        concurrent ``parallel=`` backend.
        """
        solver = resolve_solver(solver)
        if solver in ("brute-force", "monte-carlo"):
            if parallel not in (None, "serial"):
                raise ReproError(
                    f"solver {solver!r} runs serially; parallel="
                    f"{parallel!r} is not supported — drop parallel= or "
                    "use solver='mft'/'spectral-batch'")
            if (retry is not None or faults is not None
                    or checkpoint is not None or pool is not None):
                raise ReproError(
                    f"retry=, faults=, checkpoint=, and pool= are sweep-"
                    f"executor features; solver {solver!r} delegates to "
                    "a baseline engine that does not support them")
            return self._delegate_solver(solver, frequencies,
                                         budget=budget,
                                         on_failure=on_failure,
                                         attribute_sources=attribute_sources,
                                         **solver_options)
        if solver_options:
            raise ReproError(
                f"solver {solver!r} accepts no extra solver options, "
                f"got {sorted(solver_options)}")
        from .executor import SweepExecutor
        executor = SweepExecutor(backend=parallel or "serial",
                                 max_workers=max_workers,
                                 chunk_size=chunk_size, solver=solver,
                                 retry=retry, faults=faults, pool=pool)
        with self._AttributionMode(self, attribute_sources):
            return executor.run(self, frequencies, budget=budget,
                                on_failure=on_failure,
                                checkpoint=checkpoint)

    def _delegate_solver(self, solver, frequencies, budget=None,
                         on_failure="record", attribute_sources=False,
                         **solver_options):
        """Route ``solver="brute-force"|"monte-carlo"`` to the baselines.

        The delegation forwards the analyzer's own output row, shared
        sweep context, recorder, and (resolved) budget, so
        ``psd(..., solver="brute-force")`` computes exactly what the
        free function :func:`repro.noise.brute_force.brute_force_psd`
        does with the same inputs.
        """
        budget = budget if budget is not None else self.budget
        if solver == "brute-force":
            from ..noise.brute_force import brute_force_psd
            kwargs = dict(solver_options)
            if self._context is not None:
                kwargs.setdefault("context", self._context)
            else:
                kwargs.setdefault("segments_per_phase",
                                  self.segments_per_phase)
            result = brute_force_psd(self.system, frequencies,
                                     output_row=self.output_row,
                                     on_failure=on_failure, budget=budget,
                                     recorder=self.recorder, **kwargs)
            if attribute_sources:
                self._attribute_brute_force(result, attribute_sources,
                                            kwargs, on_failure, budget)
            else:
                result.info.setdefault("budget", None)
            return result
        if attribute_sources:
            raise ReproError(
                "attribute_sources= is not supported for "
                "solver='monte-carlo' (a sampled estimator cannot "
                "guarantee the conservation contract); use 'mft', "
                "'spectral-batch', or 'brute-force'")
        from ..baselines.montecarlo import monte_carlo_psd
        if frequencies is not None:
            raise ReproError(
                "solver='monte-carlo' estimates the PSD on its own Welch "
                "frequency grid (f_clk / segment_periods resolution); "
                "pass frequencies=None and read result.frequencies")
        # The engine's context is NOT forwarded by default: Monte-Carlo
        # spectral estimation needs a *uniform* sampling grid, which the
        # boundary-layer-graded deterministic discretization usually is
        # not. Pass context= in solver_options to share one explicitly.
        mc = monte_carlo_psd(self.system, output_row=self.output_row,
                             budget=budget, recorder=self.recorder,
                             **solver_options)
        result = mc.psd
        result.info["standard_error"] = mc.standard_error
        result.info["n_periods"] = mc.n_periods
        return result

    def _attribute_brute_force(self, result, attribute_sources, kwargs,
                               on_failure, budget):
        """Per-source transient replays onto a brute-force total sweep.

        The total run's converged horizon (periods per frequency) is
        replayed once per noise source with that source's single-column
        Gramians; the integrated covariance/cross-spectrum/ESD ODEs are
        linear in the Gramians, so the replays sum to the total exactly.
        Frequencies where the total failed are NaN in every replay, and
        a replay failure NaNs the total back (the NaN-union contract).
        Mutates ``result`` in place: attaches ``info["budget"]``.
        """
        from ..noise.brute_force import brute_force_psd
        with self._AttributionMode(self, attribute_sources):
            context = self._context
            rec = self.recorder
            freqs = result.frequencies
            details = result.info["details"]
            periods = np.full(freqs.shape, np.nan)
            for idx, detail in enumerate(details):
                if detail is not None:
                    periods[idx] = detail.periods
            kwargs = dict(kwargs)
            kwargs.pop("context", None)
            kwargs.pop("segments_per_phase", None)
            n_sources = context.n_sources
            contributions = np.empty((n_sources, freqs.size))
            with rec.span("attribution.replay", n_sources=int(n_sources),
                          n=int(freqs.size)):
                for s in range(n_sources):
                    source = brute_force_psd(
                        self.system, freqs, output_row=self.output_row,
                        on_failure=on_failure, budget=budget,
                        recorder=rec, disc=context.source_disc(s),
                        fixed_periods=periods, **kwargs)
                    contributions[s] = source.psd
            # NaN union both ways: a frequency that failed anywhere is
            # NaN in the total AND in every budget row.
            nan_mask = ~np.isfinite(result.psd)
            nan_mask |= np.any(~np.isfinite(contributions), axis=0)
            result.psd[nan_mask] = np.nan
            contributions[:, nan_mask] = np.nan
            with rec.span("attribution.budget", n_sources=int(n_sources)):
                from ..metrics import ContributionBudget
                result.info["budget"] = ContributionBudget(
                    frequencies=freqs,
                    labels=list(self._source_labels),
                    contributions=contributions,
                    total=np.array(result.psd, dtype=float),
                    output=result.output, method=result.method,
                    solver="brute-force")
            rec.count("attribution.sources", n_sources)
            rec.count("attribution.sweeps")

    # -- tracing --------------------------------------------------------------

    def trace_report(self, title="mft trace"):
        """Tree-formatted table of every span the recorder holds.

        Needs an enabled :class:`~repro.obs.Recorder` passed at
        construction; with the default no-op recorder the report says
        so instead of raising.
        """
        if not self.recorder.enabled:
            return (f"{title}\n(tracing disabled — construct the "
                    "analyzer with recorder=Recorder() to collect spans)")
        return format_trace(self.recorder, title=title)

    def trace_export(self):
        """JSON-friendly dump of the recorder's spans and metrics."""
        return self.recorder.export()

    # -- fallback machinery -------------------------------------------------

    def _strategies(self, frequency, budget):
        """Ordered (name, thunk) solve strategies for one frequency.

        In attribution mode every strategy returns the
        ``[total, source…]`` vector instead of a scalar — the whole
        vector comes from one strategy at one discretization, so a
        fallback never mixes solver settings between the total and the
        budget rows (which would break conservation).
        """
        solve_at = (self._psd_vector_at if self._attribution
                    else self._psd_at)
        policy = self.fallback
        if policy is None:
            return [("mft-direct", lambda: solve_at(frequency))]
        strategies = [("mft-direct", lambda: solve_at(
            frequency, condition_limit=policy.condition_limit))]
        if policy.enable_refinement and np.isscalar(
                self.segments_per_phase):
            previous = int(self.segments_per_phase)
            for k in range(1, policy.max_refinements + 1):
                refined = min(int(self.segments_per_phase) * 2 ** k,
                              policy.segments_cap)
                if refined <= previous:
                    break
                previous = refined
                strategies.append((
                    f"mft-refine-{refined}",
                    lambda r=refined: self._refined_solve(
                        r, frequency, policy)))
        if policy.enable_regularized:
            strategies.append(("mft-regularized", lambda: solve_at(
                frequency, solver="lstsq",
                ridge=policy.regularization)))
        if policy.enable_brute_force:
            strategies.append(("brute-force", lambda: self._brute_force_at(
                frequency, policy, budget)))
        return strategies

    def _refined_solve(self, segments, frequency, policy):
        """One refined-grid strategy call (scalar or attribution vector)."""
        refined = self._refined_analyzer(segments)
        if not self._attribution:
            return refined._psd_at(frequency,
                                   condition_limit=policy.condition_limit)
        if refined._context is None:
            raise ReproError(
                "refined attribution solve needs a cached sibling "
                "analyzer (cache=True)")
        return refined._psd_vector_at(
            frequency, condition_limit=policy.condition_limit)

    def _refined_analyzer(self, segments):
        """A sibling analyzer on a denser grid (built once, cached)."""
        analyzer = self._refined.get(segments)
        if analyzer is None:
            logger.info("building refined discretization: %d segments "
                        "per phase", segments)
            analyzer = MftNoiseAnalyzer(
                self.system, segments_per_phase=segments,
                output_row=self.output_row, preflight=False,
                fallback=False, cache=self._context is not None,
                recorder=self.recorder)
            self._refined[segments] = analyzer
        return analyzer

    def _brute_force_at(self, frequency, policy, budget):
        """Terminal fallback: the transient engine at one frequency.

        In attribution mode the total run's convergence horizon is
        replayed per source at fixed period count, so the per-source
        transients sum to the total one by linearity of the integrated
        ODEs (see :func:`repro.noise.brute_force.brute_force_psd`).
        """
        from ..noise.brute_force import brute_force_psd
        kwargs = dict(policy.brute_force_kwargs)
        kwargs.setdefault("segments_per_phase",
                          self.segments_per_phase
                          if np.isscalar(self.segments_per_phase) else 64)
        if (self._context is not None and "context" not in kwargs
                and kwargs["segments_per_phase"]
                == self._context.segments_per_phase):
            kwargs["context"] = self._context
        result = brute_force_psd(self.system, [frequency],
                                 output_row=self.output_row,
                                 budget=budget, recorder=self.recorder,
                                 **kwargs)
        if not self._attribution:
            return float(result.psd[0])
        context = self._context
        periods = result.info["details"][0].periods
        out = np.empty(1 + context.n_sources)
        out[0] = float(result.psd[0])
        kwargs.pop("context", None)
        for s in range(context.n_sources):
            source = brute_force_psd(
                self.system, [frequency], output_row=self.output_row,
                budget=budget, recorder=self.recorder,
                disc=context.source_disc(s), fixed_periods=periods,
                **kwargs)
            out[1 + s] = float(source.psd[0])
        return out

    # -- other observables --------------------------------------------------

    def instantaneous_psd(self, frequency):
        """``S(t, f)`` over one steady-state period at one frequency.

        Double-sided instantaneous PSD samples in V²/Hz."""
        omega = 2.0 * np.pi * float(frequency)
        solution = self._solve(omega)
        values = 2.0 * np.real(solution.post @ self._l_row)
        return InstantaneousPsd(times=solution.grid.copy(), values=values,
                                frequency=float(frequency))

    def cross_spectral_contributions(self, frequency):
        """Period-averaged ``2 Re(q_i)`` per state at one frequency.

        The draft highlights that the method exposes "the relative
        contributions of various portions of the circuit": the i-th entry
        is the cross-spectral density between state ``i`` and the output.
        The entries weighted by ``l`` sum to the output PSD.
        """
        omega = 2.0 * np.pi * float(frequency)
        solution = self._solve(omega)
        integral = solution.integrate_dot()
        return 2.0 * np.real(integral) / self._disc.period

    def _output_name(self):
        names = getattr(self.system, "output_names", None)
        if names:
            return names[self.output_row]
        return f"row{self.output_row}"


def finalize_sweep_values(analyzer, freqs, values, report, solver=None):
    """Clip the total PSD and split off the attribution budget.

    Shared tail of the inline (:meth:`MftNoiseAnalyzer.psd`) and
    executor sweeps.  ``values`` is the raw sweep output: 1-D outside
    attribution mode, ``(n_freq, 1 + n_sources)`` inside it (column 0
    the total, columns 1… the per-source rows).  Returns
    ``(raw_total, clipped_total, budget_or_none)``; the budget rows are
    deliberately **unclipped** so they sum to the unclipped total
    exactly, and a frequency that is NaN in the total is NaN in every
    budget row (whole rows fail together — the NaN-union contract).
    """
    rec = analyzer.recorder
    if values.ndim == 1:
        with rec.span("mft.clip"):
            clipped = clip_negative_psd(freqs, values, report,
                                        logger=logger)
        return values, clipped, None
    raw_total = np.ascontiguousarray(values[:, 0])
    contributions = np.ascontiguousarray(values[:, 1:].T)
    with rec.span("mft.clip"):
        clipped = clip_negative_psd(freqs, raw_total, report,
                                    logger=logger)
    n_sources = contributions.shape[0]
    with rec.span("attribution.budget", n_sources=int(n_sources)):
        from ..metrics import ContributionBudget
        contribution = ContributionBudget(
            frequencies=freqs, labels=list(analyzer._source_labels),
            contributions=contributions, total=raw_total,
            output=analyzer._output_name(), method="mft",
            solver=solver)
    rec.count("attribution.sources", n_sources)
    rec.count("attribution.sweeps")
    return raw_total, clipped, contribution


def _record_budget_failures(freqs, start_idx, reason, failures, report):
    """Mark every frequency from ``start_idx`` on as budget-failed."""
    # scn: ignore[SCN008] - this loop IS the budget-exhaustion
    # bookkeeping: it only records the already-made budget decision
    for k in range(start_idx, freqs.size):
        failures.append(FrequencyFailure(
            frequency=float(freqs[k]), index=k, stage="budget",
            error="BudgetExceededError", message=reason))
    report.error(
        "budget-exhausted",
        f"sweep budget spent before {freqs.size - start_idx} of "
        f"{freqs.size} frequencies: {reason}",
        skipped=freqs.size - start_idx, reason=reason)
    logger.warning("sweep budget spent: skipping %d frequencies (%s)",
                   freqs.size - start_idx, reason)


def mft_psd(system, frequencies, segments_per_phase=64, output_row=0,
            **kwargs):
    """One-call convenience wrapper around :class:`MftNoiseAnalyzer`.

    Returns the averaged double-sided PSD in V²/Hz.

    Keyword arguments (``preflight``, ``fallback``, ``budget``,
    ``cache``, ``context``, ``recorder``) are forwarded to the analyzer
    constructor.
    """
    analyzer = MftNoiseAnalyzer(system,
                                segments_per_phase=segments_per_phase,
                                output_row=output_row, **kwargs)
    return analyzer.psd(frequencies)


# re-exported for backwards compatibility with earlier imports
__all__ = ["InstantaneousPsd", "MftNoiseAnalyzer", "mft_psd",
           "preflight_report"]
