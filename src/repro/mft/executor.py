"""Parallel frequency-sweep execution for the MFT engine.

The frequencies of a PSD sweep are independent — each is one periodic
steady-state solve — so a sweep shards naturally into chunks that run
concurrently. :class:`SweepExecutor` does exactly that while keeping the
semantics of the serial :meth:`~repro.mft.engine.MftNoiseAnalyzer.psd`
sweep:

* **Values**: identical per-frequency numerics (same analyzer, same
  solves), merged back in frequency order.
* **Partial failure**: a frequency whose fallback chain is exhausted
  contributes NaN plus a :class:`FrequencyFailure` with its *global*
  sweep index, exactly as in the serial sweep.
* **Diagnostics**: workers collect findings into chunk-local reports
  that are merged in chunk order; negative-PSD clipping is diagnosed
  once on the merged values, so severity counts match the serial sweep.
* **Budget**: the :class:`~repro.diagnostics.budget.SweepBudget` gates
  the *dispatch* of new chunks. Once spent, no further chunk is
  submitted and the remaining frequencies become ``budget``-stage
  failures — but in-flight chunks always run to completion; the
  executor never kills work it already started.

Backends: ``"serial"`` (in-process loop, the default), ``"thread"``
(cheap dispatch; the solves are NumPy/LAPACK-heavy so the GIL is partly
released), and ``"process"`` (true multi-core; the analyzer and its
warmed :class:`~repro.mft.context.SweepContext` are shipped to workers
by fork when available, pickle otherwise). The analyzer is warmed up
(:meth:`~repro.mft.engine.MftNoiseAnalyzer.warm_up`) before dispatch so
workers never race on lazy caches and forked workers inherit the
precomputed frequency-independent work.
"""

from __future__ import annotations

import concurrent.futures as cf
import dataclasses
import logging
import multiprocessing
import os
import time

import numpy as np

from ..diagnostics.budget import as_budget
from ..diagnostics.report import DiagnosticsReport, FrequencyFailure
from ..errors import ReproError
from ..noise.result import PsdResult, clip_negative_psd, worst_negative_psd
from ..obs import span_summary
from .engine import fold_cache_delta

logger = logging.getLogger(__name__)

_BACKENDS = ("serial", "thread", "process")

#: Default chunk size: large enough to amortise dispatch overhead,
#: small enough that the budget gate has frequent decision points.
_DEFAULT_CHUNK = 8

#: Default chunk size for ``solver="spectral-batch"``: each chunk is one
#: ω-block through the batched kernel, so larger blocks amortise the
#: per-block trace recursion and stacked solves across more frequencies.
_DEFAULT_SPECTRAL_CHUNK = 64

#: ``None`` and ``"mft"`` are the same per-frequency reference sweep —
#: ``"mft"`` is the unified-API spelling (:mod:`repro.noise.solvers`).
_SOLVERS = (None, "mft", "spectral-batch")


def _default_workers():
    return max(1, (os.cpu_count() or 1))


def _run_chunk(analyzer, frequencies, on_failure, solver=None,
               parent_span=None, export_obs=False, submitted_at=None):
    """Worker body: sweep one chunk with a chunk-local report.

    Runs unbudgeted (the budget gates dispatch, not execution) and
    returns *unclipped* values — clipping is diagnosed once on the
    merged sweep so the finding counts match the serial path.  With
    ``solver="spectral-batch"`` the chunk is evaluated as one ω-block
    through the frequency-batched spectral kernel instead of the per
    -frequency loop.

    Observability: the chunk runs inside an ``executor.chunk`` span
    attached under ``parent_span`` (the dispatcher's span — worker
    threads have an empty span stack of their own). With ``export_obs``
    (the process backend, where the worker records into a *private*
    pickled copy of the recorder) the spans and metrics recorded by
    this chunk — including the chunk-local cache-stats delta — are
    exported and returned as the fifth tuple element for the dispatcher
    to merge; on the shared-recorder backends it is ``None`` and the
    dispatcher folds one sweep-level delta instead.
    """
    rec = analyzer.recorder
    collect = export_obs and rec.enabled
    checkpoint = rec.checkpoint() if collect else None
    stats = analyzer.cache_stats
    stats_before = (stats.snapshot()
                    if collect and stats is not None else None)
    if rec.enabled and submitted_at is not None:
        rec.observe("executor.queue_seconds",
                    max(0.0, time.perf_counter() - submitted_at))
    report = DiagnosticsReport(context="mft sweep chunk")
    budget = as_budget(None)
    budget.start()
    sweep = (analyzer._sweep_batched if solver == "spectral-batch"
             else analyzer._sweep_raw)
    with rec.span("executor.chunk", _parent=parent_span,
                  n=int(len(frequencies)), pid=os.getpid()):
        values, failures, attempts = sweep(
            np.asarray(frequencies, dtype=float), on_failure, budget,
            report)
    obs = None
    if collect:
        if stats_before is not None:
            fold_cache_delta(rec, stats_before, stats.snapshot())
        obs = rec.export_since(checkpoint)
    return values, failures, attempts, report.findings, obs


class SweepExecutor:
    """Run an MFT frequency sweep in chunks, optionally concurrently.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"``, or ``"process"``.
    max_workers:
        Worker count for the concurrent backends (default: CPU count).
    chunk_size:
        Frequencies per dispatched chunk (default 8, or 64 for the
        spectral-batch solver where each chunk is one ω-block). Smaller
        chunks give the budget gate finer granularity; larger chunks
        amortise dispatch overhead.
    solver:
        ``None`` (default) sweeps each chunk through the per-frequency
        fallback chain; ``"spectral-batch"`` evaluates each chunk as
        one ω-block through :mod:`repro.mft.spectral` (requires the
        analyzer's shared sweep context).
    """

    def __init__(self, backend="serial", max_workers=None, chunk_size=None,
                 solver=None):
        if backend not in _BACKENDS:
            raise ReproError(
                f"unknown sweep backend {backend!r}; expected one of "
                f"{_BACKENDS}")
        if solver not in _SOLVERS:
            raise ReproError(
                f"unknown sweep solver {solver!r}; expected one of "
                f"{_SOLVERS}")
        self.backend = backend
        self.solver = None if solver == "mft" else solver
        solver = self.solver
        self.max_workers = (int(max_workers) if max_workers is not None
                            else _default_workers())
        if self.max_workers < 1:
            raise ReproError(
                f"max_workers must be positive, got {max_workers}")
        if chunk_size is not None:
            self.chunk_size = int(chunk_size)
        elif solver == "spectral-batch":
            self.chunk_size = _DEFAULT_SPECTRAL_CHUNK
        else:
            self.chunk_size = _DEFAULT_CHUNK
        if self.chunk_size < 1:
            raise ReproError(
                f"chunk_size must be positive, got {chunk_size}")

    # -- public API ----------------------------------------------------------

    def run(self, analyzer, frequencies, budget=None, on_failure="record"):
        """Sweep ``frequencies`` with ``analyzer``; returns a PsdResult.

        Matches :meth:`MftNoiseAnalyzer.psd` point for point — values,
        NaN masks, failure records, diagnostics severity counts — and
        additionally reports executor metadata in
        ``info["executor"]``.
        """
        if on_failure not in ("record", "raise"):
            raise ReproError(
                f"on_failure must be 'record' or 'raise', "
                f"got {on_failure!r}")
        freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
        budget = as_budget(budget if budget is not None
                           else analyzer.budget)
        budget.start()
        report = DiagnosticsReport(context="mft sweep")
        report.merge(analyzer.preflight)
        rec = analyzer.recorder
        mark = rec.mark()
        cache_stats = analyzer.cache_stats
        stats_before = (cache_stats.snapshot()
                        if rec.enabled and cache_stats is not None
                        else None)
        t0 = time.perf_counter()
        with rec.span("mft.sweep", backend=self.backend,
                      solver=self.solver or "mft",
                      n=int(freqs.size)):
            with rec.span("mft.warmup"):
                analyzer.warm_up()
                if self.solver == "spectral-batch":
                    if analyzer.context is None:
                        raise ReproError(
                            "solver='spectral-batch' needs the shared "
                            "sweep context; construct the analyzer with "
                            "cache=True (the default) or an explicit "
                            "context=")
                    # Materialise group eigenbases before dispatch so
                    # thread workers never race on the lazy property.
                    analyzer.context.spectral_bases
            chunks = [(start, freqs[start:start + self.chunk_size])
                      for start in range(0, freqs.size, self.chunk_size)]
            with rec.span("executor.dispatch",
                          n_chunks=len(chunks)) as dispatch_span:
                parent_span = (dispatch_span.span_id if rec.enabled
                               else None)
                if self.backend == "serial" or len(chunks) <= 1:
                    outputs, skipped_from = self._run_serial(
                        analyzer, chunks, budget, on_failure)
                else:
                    outputs, skipped_from = self._run_pooled(
                        analyzer, chunks, budget, on_failure,
                        parent_span)
            with rec.span("executor.merge"):
                for output in outputs:
                    if output[4] is not None:
                        rec.merge(output[4], parent_id=parent_span)
                values, failures, attempts = self._merge(
                    freqs, chunks, outputs, skipped_from, budget, report)
            with rec.span("mft.clip"):
                clipped = clip_negative_psd(freqs, values, report,
                                            logger=logger)
        runtime = time.perf_counter() - t0
        if rec.enabled:
            rec.count("executor.chunks_dispatched", len(outputs))
            if stats_before is not None:
                # One parent-side delta. On the shared-context backends
                # (serial/thread) it covers the whole sweep; on the
                # process backend the workers mutate *private* context
                # copies — their chunk-local deltas arrived through the
                # merged exports, and the parent delta only adds the
                # warm-up counts. Either way the totals match the
                # serial sweep exactly.
                fold_cache_delta(rec, stats_before,
                                 cache_stats.snapshot())
            report.timeline = span_summary(rec, since=mark)
        stats = analyzer.cache_stats
        return PsdResult(
            frequencies=freqs, psd=clipped, method="mft",
            output=analyzer._output_name(),
            info={
                "runtime_seconds": runtime,
                "segments": len(analyzer._disc.segments),
                "negative_clipped": int(np.sum(
                    np.isfinite(values) & (values < 0.0))),
                "worst_negative_psd": worst_negative_psd(values),
                "diagnostics": report,
                "failures": failures,
                "fallback_attempts": attempts,
                "cache_stats": (stats.to_dict()
                                if stats is not None else None),
                "executor": {
                    "backend": self.backend,
                    "solver": self.solver,
                    "max_workers": self.max_workers,
                    "chunk_size": self.chunk_size,
                    "n_chunks": len(chunks),
                    "n_chunks_skipped": len(chunks) - len(outputs),
                },
            })

    # -- backends ------------------------------------------------------------

    def _run_serial(self, analyzer, chunks, budget, on_failure):
        """In-process chunk loop; the reference dispatch semantics."""
        outputs = []
        for i, (_start, chunk) in enumerate(chunks):
            if budget.exceeded() is not None:
                return outputs, i
            outputs.append(_run_chunk(analyzer, chunk, on_failure,
                                      self.solver))
        return outputs, None

    def _make_pool(self):
        if self.backend == "thread":
            return cf.ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        return cf.ProcessPoolExecutor(max_workers=self.max_workers,
                                      mp_context=ctx)

    def _run_pooled(self, analyzer, chunks, budget, on_failure,
                    parent_span=None):
        """Bounded-in-flight dispatch with a budget gate between submits.

        At most ``max_workers`` chunks are in flight; before each new
        submission the budget is checked, and on exhaustion the
        remaining chunks are *not* dispatched while everything already
        submitted runs to completion.
        """
        outputs = {}
        skipped_from = None
        next_chunk = 0
        pending = {}
        with self._make_pool() as pool:
            try:
                while next_chunk < len(chunks) or pending:
                    while (next_chunk < len(chunks)
                           and len(pending) < self.max_workers):
                        if budget.exceeded() is not None:
                            skipped_from = next_chunk
                            next_chunk = len(chunks)
                            break
                        future = pool.submit(
                            _run_chunk, analyzer,
                            chunks[next_chunk][1], on_failure, self.solver,
                            parent_span, self.backend == "process",
                            time.perf_counter())
                        pending[future] = next_chunk
                        next_chunk += 1
                    if not pending:
                        break
                    done, _ = cf.wait(
                        pending, return_when=cf.FIRST_COMPLETED)
                    for future in done:
                        outputs[pending.pop(future)] = future.result()
            finally:
                # Abandon not-yet-started chunks when a worker raised
                # (on_failure="raise"); no-op on the clean path where
                # ``pending`` is already empty.
                for future in pending:
                    future.cancel()
        ordered = [outputs[i] for i in sorted(outputs)]
        return ordered, skipped_from

    # -- merging -------------------------------------------------------------

    @staticmethod
    def _merge(freqs, chunks, outputs, skipped_from, budget, report):
        """Stitch chunk outputs back into one sweep, in index order."""
        values = np.full(freqs.shape, np.nan)
        failures = []
        attempts = []
        for (start, chunk), (chunk_values, chunk_failures,
                             chunk_attempts, findings, _obs) in zip(
                chunks, outputs):
            values[start:start + chunk.size] = chunk_values
            for failure in chunk_failures:
                failures.append(dataclasses.replace(
                    failure, index=failure.index + start))
            attempts.extend(chunk_attempts)
            report.merge(findings)
        if skipped_from is not None:
            first_skipped = chunks[skipped_from][0]
            reason = budget.exceeded() or "budget exhausted"
            for k in range(first_skipped, freqs.size):
                failures.append(FrequencyFailure(
                    frequency=float(freqs[k]), index=k, stage="budget",
                    error="BudgetExceededError", message=reason))
            report.error(
                "budget-exhausted",
                f"sweep budget spent before {freqs.size - first_skipped} "
                f"of {freqs.size} frequencies: {reason}",
                skipped=freqs.size - first_skipped, reason=reason)
            logger.warning(
                "sweep budget spent: %d chunks not dispatched "
                "(%d frequencies)", len(chunks) - skipped_from,
                freqs.size - first_skipped)
        return values, failures, attempts
