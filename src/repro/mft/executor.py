"""Parallel frequency-sweep execution for the MFT engine.

The frequencies of a PSD sweep are independent — each is one periodic
steady-state solve — so a sweep shards naturally into chunks that run
concurrently. :class:`SweepExecutor` does exactly that while keeping the
semantics of the serial :meth:`~repro.mft.engine.MftNoiseAnalyzer.psd`
sweep:

* **Values**: identical per-frequency numerics (same analyzer, same
  solves), merged back in frequency order.
* **Partial failure**: a frequency whose fallback chain is exhausted
  contributes NaN plus a :class:`FrequencyFailure` with its *global*
  sweep index, exactly as in the serial sweep.
* **Diagnostics**: workers collect findings into chunk-local reports
  that are merged in chunk order; negative-PSD clipping is diagnosed
  once on the merged values, so severity counts match the serial sweep.
* **Budget**: the :class:`~repro.diagnostics.budget.SweepBudget` gates
  the *dispatch* of new chunks. Once spent, no further chunk is
  submitted and the remaining frequencies become ``budget``-stage
  failures — but in-flight chunks always run to completion; the
  executor never kills work it already started.

Backends: ``"serial"`` (in-process loop, the default), ``"thread"``
(cheap dispatch; the solves are NumPy/LAPACK-heavy so the GIL is partly
released), and ``"process"`` (true multi-core; the analyzer and its
warmed :class:`~repro.mft.context.SweepContext` are shipped to workers
by fork when available, pickle otherwise). The analyzer is warmed up
(:meth:`~repro.mft.engine.MftNoiseAnalyzer.warm_up`) before dispatch so
workers never race on lazy caches and forked workers inherit the
precomputed frequency-independent work.

Operational resilience (DESIGN.md §10): a chunk that fails for a
*non-numerical* reason — a worker process dying (broken pool), a chunk
running past its per-chunk timeout, an unexpected exception escaping
the worker body — is requeued with exponential backoff + jitter up to
``RetryPolicy.max_retries`` times, on a freshly respawned pool when the
old one broke.  Numerical failures (:class:`~repro.errors.ReproError`,
i.e. the ``on_failure="raise"`` contract and exhausted fallback chains)
are never retried — they propagate exactly as before.  A chunk that
exhausts its retries degrades to the NaN + :class:`FrequencyFailure`
partial-failure contract with stage ``"retry-exhausted"``,
``"worker-crash"``, or ``"timeout"``.  Every retry/crash/timeout is
counted on the analyzer's recorder and mirrored as a finding.  With a
``checkpoint=`` store each completed chunk is persisted as it merges,
and a re-run resumes from the completed set bit-identically
(:mod:`repro.resilience.checkpoint`).  Deterministic fault injection
for all of the above lives in :mod:`repro.resilience.faults`.
"""

from __future__ import annotations

import collections
import concurrent.futures as cf
import dataclasses
import hashlib
import logging
import multiprocessing
import numbers
import os
import time

import numpy as np

from ..diagnostics.budget import as_budget
from ..diagnostics.report import DiagnosticsReport, FrequencyFailure
from ..errors import ReproError
from ..noise.result import PsdResult, worst_negative_psd
from ..obs import span_summary
from ..resilience.checkpoint import SweepCheckpoint
from ..resilience.faults import (
    FaultPlan,
    InjectedWorkerCrash,
    activate,
    fire,
)
from ..resilience.retry import resolve_retry
from .engine import finalize_sweep_values, fold_cache_delta

logger = logging.getLogger(__name__)

_BACKENDS = ("serial", "thread", "process")

#: Default chunk size: large enough to amortise dispatch overhead,
#: small enough that the budget gate has frequent decision points.
_DEFAULT_CHUNK = 8

#: Default chunk size for ``solver="spectral-batch"``: each chunk is one
#: ω-block through the batched kernel, so larger blocks amortise the
#: per-block trace recursion and stacked solves across more frequencies.
_DEFAULT_SPECTRAL_CHUNK = 64

#: ``None`` and ``"mft"`` are the same per-frequency reference sweep —
#: ``"mft"`` is the unified-API spelling (:mod:`repro.noise.solvers`).
#: ``"param-batch"`` is the corner-sweep analyzer's flattened
#: (param, freq)-axis solver (:mod:`repro.mft.corners`); it is reached
#: through :func:`repro.mft.corners.corner_psd_sweep`, not the unified
#: solver registry.
_SOLVERS = (None, "mft", "spectral-batch", "param-batch")

#: Solvers whose chunks are evaluated as one batched block through the
#: analyzer's ``_sweep_batched`` (vs the per-frequency ``_sweep_raw``).
_BATCHED_SOLVERS = ("spectral-batch", "param-batch")


def _default_workers():
    return max(1, (os.cpu_count() or 1))


def _positive_int(name, value, default, minimum=1):
    """Validate an integer knob, mirroring the ``_BACKENDS`` check.

    ``None`` selects ``default``.  Booleans and non-integral values are
    rejected (``workers=0``/``chunk_size=-3`` used to be silently
    accepted downstream); the error states the allowed range.
    """
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ReproError(
            f"{name} must be an integer >= {minimum} (or None for the "
            f"default), got {value!r} of type {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ReproError(
            f"{name} must be >= {minimum}, got {value}; allowed range "
            f"is [{minimum}, ∞)")
    return value


def _run_chunk(analyzer, frequencies, on_failure, solver=None,
               parent_span=None, export_obs=False, submitted_at=None,
               plan=None, attempt=0, chunk_start=0):
    """Worker body: sweep one chunk with a chunk-local report.

    Runs unbudgeted (the budget gates dispatch, not execution) and
    returns *unclipped* values — clipping is diagnosed once on the
    merged sweep so the finding counts match the serial path.  With
    ``solver="spectral-batch"`` the chunk is evaluated as one ω-block
    through the frequency-batched spectral kernel instead of the per
    -frequency loop.

    Observability: the chunk runs inside an ``executor.chunk`` span
    attached under ``parent_span`` (the dispatcher's span — worker
    threads have an empty span stack of their own). With ``export_obs``
    (the process backend, where the worker records into a *private*
    pickled copy of the recorder) the spans and metrics recorded by
    this chunk — including the chunk-local cache-stats delta — are
    exported and returned as the fifth tuple element for the dispatcher
    to merge; on the shared-recorder backends it is ``None`` and the
    dispatcher folds one sweep-level delta instead.

    Fault injection: ``plan``/``attempt`` arm the worker's thread-local
    :class:`~repro.resilience.faults.FaultPlan` for the duration of the
    chunk (no-op when ``plan`` is ``None``), firing the
    ``executor.chunk`` seam on entry and the per-frequency seams inside
    the engine.
    """
    with activate(plan, attempt):
        fire("executor.chunk", chunk=int(chunk_start))
        rec = analyzer.recorder
        collect = export_obs and rec.enabled
        checkpoint = rec.checkpoint() if collect else None
        stats = analyzer.cache_stats
        stats_before = (stats.snapshot()
                        if collect and stats is not None else None)
        if rec.enabled and submitted_at is not None:
            rec.observe("executor.queue_seconds",
                        max(0.0, time.perf_counter() - submitted_at))
        report = DiagnosticsReport(context="mft sweep chunk")
        budget = as_budget(None)
        budget.start()
        sweep = (analyzer._sweep_batched if solver in _BATCHED_SOLVERS
                 else analyzer._sweep_raw)
        with rec.span("executor.chunk", _parent=parent_span,
                      n=int(len(frequencies)), pid=os.getpid()):
            # ``start`` tells flattened-axis analyzers (param-batch)
            # which (corner, frequency) cells this chunk covers; the
            # plain batched sweep ignores it, and the raw path keeps
            # its legacy signature (duck-typed analyzer overrides).
            if solver in _BATCHED_SOLVERS:
                values, failures, attempts = sweep(
                    np.asarray(frequencies, dtype=float), on_failure,
                    budget, report, start=int(chunk_start))
            else:
                values, failures, attempts = sweep(
                    np.asarray(frequencies, dtype=float), on_failure,
                    budget, report)
        obs = None
        if collect:
            if stats_before is not None:
                fold_cache_delta(rec, stats_before, stats.snapshot())
            obs = rec.export_since(checkpoint)
        return values, failures, attempts, report.findings, obs


class _DispatchState:
    """Book-keeping shared by the serial and pooled dispatch loops.

    Tracks completed chunk outputs (seeded from a checkpoint on
    resume), chunks that exhausted their retries, chunks skipped by the
    budget gate, and the resilience counters/findings — and persists
    each completed chunk to the checkpoint store as it lands.
    """

    def __init__(self, chunks, recorder, report, retry, store):
        self.chunks = chunks
        self.recorder = recorder
        self.report = report
        self.retry = retry
        self.store = store
        self.outputs = {}
        self.chunk_errors = {}
        self.skipped = set()
        self.n_resumed = 0
        self.n_retries = 0
        self.n_worker_crashes = 0
        self.n_timeouts = 0

    def resume(self, completed):
        """Seed completed chunks loaded from the checkpoint store."""
        starts = {start: idx for idx, (start, _chunk)
                  in enumerate(self.chunks)}
        for start, output in completed.items():
            idx = starts.get(int(start))
            if idx is None:
                raise ReproError(
                    f"checkpoint chunk start {start} does not align "
                    "with the sweep chunking — the store key should "
                    "have caught this; delete the checkpoint directory")
            self.outputs[idx] = output
        self.n_resumed = len(self.outputs)
        if self.n_resumed:
            self.recorder.count("executor.chunks_resumed",
                                self.n_resumed)
            self.report.info(
                "checkpoint-resume",
                f"resumed {self.n_resumed} of {len(self.chunks)} chunks "
                f"from {self.store.path}",
                n_resumed=self.n_resumed, n_chunks=len(self.chunks),
                path=str(self.store.path))

    def todo(self):
        return [idx for idx in range(len(self.chunks))
                if idx not in self.outputs]

    def complete(self, idx, output):
        self.outputs[idx] = output
        if self.store is not None:
            values, failures, attempts, findings, _obs = output
            self.store.record(self.chunks[idx][0], values, failures,
                              attempts, findings)

    def note_retry(self, idx, next_attempt, stage, exc, delay):
        """Record one requeue of chunk ``idx`` (about to re-run)."""
        self.n_retries += 1
        self.recorder.count("executor.retries")
        if stage == "worker-crash":
            self.n_worker_crashes += 1
            self.recorder.count("executor.worker_crashes")
            code = "worker-crash"
        elif stage == "timeout":
            self.n_timeouts += 1
            self.recorder.count("executor.timeouts")
            code = "chunk-timeout"
        else:
            code = "chunk-retry"
        message = (f"chunk {idx} ({stage}): {type(exc).__name__}: {exc}"
                   f" — retrying (attempt {next_attempt} of "
                   f"{self.retry.max_retries}) after {delay:.3g} s")
        self.report.warning(code, message, chunk=idx,
                            attempt=next_attempt, stage=stage,
                            delay_seconds=delay,
                            error=type(exc).__name__)
        logger.warning("sweep %s", message)

    def fail_chunk(self, idx, stage, exc):
        """Chunk ``idx`` is out of retries: degrade to NaN + failures."""
        if stage == "worker-crash":
            self.n_worker_crashes += 1
            self.recorder.count("executor.worker_crashes")
        elif stage == "timeout":
            self.n_timeouts += 1
            self.recorder.count("executor.timeouts")
        self.recorder.count("executor.chunks_failed")
        message = (f"chunk {idx} failed after "
                   f"{self.retry.max_retries + 1} attempts: "
                   f"{type(exc).__name__}: {exc}")
        self.chunk_errors[idx] = (stage, type(exc).__name__, message)
        self.report.error("retry-exhausted", message, chunk=idx,
                          stage=stage, error=type(exc).__name__)
        logger.error("sweep %s", message)

    def skip(self, indices):
        self.skipped.update(int(idx) for idx in indices)


class SweepExecutor:
    """Run an MFT frequency sweep in chunks, optionally concurrently.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"``, or ``"process"``.
    max_workers:
        Worker count for the concurrent backends (default: CPU count).
    chunk_size:
        Frequencies per dispatched chunk (default 8, or 64 for the
        spectral-batch solver where each chunk is one ω-block). Smaller
        chunks give the budget gate finer granularity; larger chunks
        amortise dispatch overhead.
    solver:
        ``None`` (default) sweeps each chunk through the per-frequency
        fallback chain; ``"spectral-batch"`` evaluates each chunk as
        one ω-block through :mod:`repro.mft.spectral` (requires the
        analyzer's shared sweep context).
    retry:
        Chunk-retry policy: ``None``/``True`` for the default
        :class:`~repro.resilience.retry.RetryPolicy`, ``False`` to
        disable retries, or an explicit policy instance (backoff,
        jitter, per-chunk timeout).
    faults:
        A :class:`~repro.resilience.faults.FaultPlan` armed around
        every chunk for deterministic fault injection (tests, chaos
        runs).  ``None`` (the default) injects nothing and costs one
        integer check per seam.
    pool:
        A shared pool provider (duck-typed: ``acquire()`` returns a
        live ``concurrent.futures`` executor, ``respawn()`` replaces a
        broken one) such as :class:`repro.service.WorkerPool`.  The
        executor then never shuts the pool down — the provider owns its
        lifetime — so successive sweeps reuse warm worker processes.
        ``None`` (the default) creates and tears down a private pool
        per sweep, exactly as before.
    """

    def __init__(self, backend="serial", max_workers=None, chunk_size=None,
                 solver=None, retry=None, faults=None, pool=None):
        if backend not in _BACKENDS:
            raise ReproError(
                f"unknown sweep backend {backend!r}; expected one of "
                f"{_BACKENDS}")
        if solver not in _SOLVERS:
            raise ReproError(
                f"unknown sweep solver {solver!r}; expected one of "
                f"{_SOLVERS}")
        self.backend = backend
        self.solver = None if solver == "mft" else solver
        solver = self.solver
        self.max_workers = _positive_int("max_workers", max_workers,
                                         _default_workers())
        default_chunk = (_DEFAULT_SPECTRAL_CHUNK
                         if solver in _BATCHED_SOLVERS else _DEFAULT_CHUNK)
        self.chunk_size = _positive_int("chunk_size", chunk_size,
                                        default_chunk)
        self.retry = resolve_retry(retry)
        if faults is not None and not isinstance(faults, FaultPlan):
            raise ReproError(
                "faults must be a repro.resilience.FaultPlan (or None), "
                f"got {type(faults).__name__}")
        self.faults = faults
        if pool is not None and (not callable(getattr(pool, "acquire",
                                                      None))
                                 or not callable(getattr(pool, "respawn",
                                                         None))):
            raise ReproError(
                "pool must provide acquire() and respawn() (e.g. "
                "repro.service.WorkerPool), got "
                f"{type(pool).__name__}")
        if pool is not None and backend == "serial":
            raise ReproError(
                "a shared pool needs a concurrent backend; use "
                "backend='thread' or backend='process'")
        self.pool = pool

    # -- public API ----------------------------------------------------------

    def run(self, analyzer, frequencies, budget=None, on_failure="record",
            checkpoint=None):
        """Sweep ``frequencies`` with ``analyzer``; returns a PsdResult.

        Matches :meth:`MftNoiseAnalyzer.psd` point for point — values,
        NaN masks, failure records, diagnostics severity counts — and
        additionally reports executor metadata in ``info["executor"]``.

        ``checkpoint`` is a directory path (or
        :class:`~repro.resilience.checkpoint.SweepCheckpoint`) to
        persist each completed chunk into; a re-run with the same store
        and an identical sweep (system fingerprint, grid, solver,
        chunking) resumes from the completed chunks bit-identically.
        """
        if on_failure not in ("record", "raise"):
            raise ReproError(
                f"on_failure must be 'record' or 'raise', "
                f"got {on_failure!r}")
        freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
        budget = as_budget(budget if budget is not None
                           else analyzer.budget)
        budget.start()
        report = DiagnosticsReport(context="mft sweep")
        report.merge(analyzer.preflight)
        rec = analyzer.recorder
        mark = rec.mark()
        cache_stats = analyzer.cache_stats
        stats_before = (cache_stats.snapshot()
                        if rec.enabled and cache_stats is not None
                        else None)
        t0 = time.perf_counter()
        with rec.span("mft.sweep", backend=self.backend,
                      solver=self.solver or "mft",
                      n=int(freqs.size)):
            with rec.span("mft.warmup"):
                analyzer.warm_up()
                if self.solver in _BATCHED_SOLVERS:
                    if analyzer.context is None:
                        raise ReproError(
                            f"solver={self.solver!r} needs the shared "
                            "sweep context; construct the analyzer with "
                            "cache=True (the default) or an explicit "
                            "context=")
                    # Materialise group eigenbases before dispatch so
                    # thread workers never race on the lazy property.
                    analyzer.context.spectral_bases
            chunks = [(start, freqs[start:start + self.chunk_size])
                      for start in range(0, freqs.size, self.chunk_size)]
            store = self._open_checkpoint(checkpoint, analyzer, freqs,
                                          on_failure)
            state = _DispatchState(chunks, rec, report, self.retry, store)
            if store is not None:
                state.resume(store.open(self._checkpoint_key(
                    analyzer, freqs, on_failure)))
            with rec.span("executor.dispatch",
                          n_chunks=len(chunks)) as dispatch_span:
                parent_span = (dispatch_span.span_id if rec.enabled
                               else None)
                if self.backend == "serial" or len(chunks) <= 1:
                    self._run_serial(analyzer, budget, on_failure, state)
                else:
                    self._run_pooled(analyzer, budget, on_failure,
                                     parent_span, state)
            with rec.span("executor.merge"):
                for idx in sorted(state.outputs):
                    output = state.outputs[idx]
                    if output[4] is not None:
                        rec.merge(output[4], parent_id=parent_span)
                values, failures, attempts = self._merge(
                    freqs, state, budget, report,
                    width=analyzer.value_width)
            raw_total, clipped, contribution = finalize_sweep_values(
                analyzer, freqs, values, report,
                solver=self.solver or "mft")
        runtime = time.perf_counter() - t0
        if rec.enabled:
            rec.count("executor.chunks_dispatched",
                      len(state.outputs) - state.n_resumed)
            if stats_before is not None:
                # One parent-side delta. On the shared-context backends
                # (serial/thread) it covers the whole sweep; on the
                # process backend the workers mutate *private* context
                # copies — their chunk-local deltas arrived through the
                # merged exports, and the parent delta only adds the
                # warm-up counts. Either way the totals match the
                # serial sweep exactly.
                fold_cache_delta(rec, stats_before,
                                 cache_stats.snapshot())
            report.timeline = span_summary(rec, since=mark)
        stats = analyzer.cache_stats
        return PsdResult(
            frequencies=freqs, psd=clipped, method="mft",
            output=analyzer._output_name(),
            info={
                "runtime_seconds": runtime,
                "segments": len(analyzer._disc.segments),
                "negative_clipped": int(np.sum(
                    np.isfinite(raw_total) & (raw_total < 0.0))),
                "worst_negative_psd": worst_negative_psd(raw_total),
                "diagnostics": report,
                "failures": failures,
                "fallback_attempts": attempts,
                "budget": contribution,
                "cache_stats": (stats.to_dict()
                                if stats is not None else None),
                "executor": {
                    "backend": self.backend,
                    "solver": self.solver,
                    "max_workers": self.max_workers,
                    "chunk_size": self.chunk_size,
                    "n_chunks": len(chunks),
                    "n_chunks_skipped": len(state.skipped),
                    "n_chunks_failed": len(state.chunk_errors),
                    "n_chunks_resumed": state.n_resumed,
                    "n_retries": state.n_retries,
                    "n_worker_crashes": state.n_worker_crashes,
                    "n_timeouts": state.n_timeouts,
                    "max_retries": self.retry.max_retries,
                    "chunk_timeout_seconds":
                        self.retry.chunk_timeout_seconds,
                    "checkpoint": (str(store.path)
                                   if store is not None else None),
                },
            })

    # -- checkpointing -------------------------------------------------------

    def _open_checkpoint(self, checkpoint, analyzer, freqs, on_failure):
        if checkpoint is None:
            return None
        if isinstance(checkpoint, SweepCheckpoint):
            return checkpoint
        return SweepCheckpoint(checkpoint)

    def _checkpoint_key(self, analyzer, freqs, on_failure):
        """Identity of one sweep for checkpoint compatibility.

        Content fingerprint of the discretized system plus grid bytes,
        output row, resolved solver, chunking, and failure mode — any
        mismatch means stored chunks cannot be spliced into this sweep.
        """
        from .context import discretization_fingerprint
        grid = hashlib.sha256(
            np.ascontiguousarray(freqs, dtype=float).tobytes())
        # ``family`` is the parameter-family hash of a corner-sweep
        # analyzer (None for plain sweeps): a corner sweep's checkpoint
        # can then never be resumed into a plain sweep of a system that
        # fingerprints identically, and vice versa.
        return {
            "fingerprint": discretization_fingerprint(
                analyzer.system, analyzer.segments_per_phase),
            "output_row": int(analyzer.output_row),
            "grid_sha256": grid.hexdigest(),
            "n_points": int(freqs.size),
            "solver": self.solver or "mft",
            "chunk_size": int(self.chunk_size),
            "on_failure": str(on_failure),
            "value_width": int(analyzer.value_width),
            "family": getattr(analyzer, "family_hash", None),
        }

    # -- backends ------------------------------------------------------------

    def _fire_dispatch(self, start):
        """Dispatcher-side seam (``kind="kill"`` aborts the sweep).

        Keyed by chunk *start* index, matching the worker-side
        ``executor.chunk`` seam, so one ``match={"chunk": s}`` targets
        the same chunk at either site.
        """
        if self.faults is not None:
            self.faults.fire("executor.dispatch", 0, chunk=int(start))

    def _run_serial(self, analyzer, budget, on_failure, state):
        """In-process chunk loop; the reference dispatch semantics.

        Retries re-run the chunk inline; per-chunk timeouts are not
        enforceable without preemption and are ignored here.
        """
        for idx in state.todo():
            if budget.exceeded() is not None:
                state.skip(i for i in state.todo()
                           if i not in state.chunk_errors)
                return
            start, chunk = state.chunks[idx]
            self._fire_dispatch(start)
            attempt = 0
            while True:
                try:
                    output = _run_chunk(
                        analyzer, chunk, on_failure, self.solver,
                        plan=self.faults, attempt=attempt,
                        chunk_start=start)
                except ReproError:
                    # Numerical failures (on_failure="raise", structural
                    # errors) keep their existing contract: no retry.
                    raise
                except Exception as exc:  # scn: ignore[SCN002]
                    # Resilience boundary: any non-ReproError escaping
                    # the worker body is an operational fault.
                    stage = ("worker-crash"
                             if isinstance(exc, InjectedWorkerCrash)
                             else "retry-exhausted")
                    if attempt >= self.retry.max_retries:
                        state.fail_chunk(idx, stage, exc)
                        break
                    attempt += 1
                    delay = self.retry.delay(attempt, chunk=idx)
                    state.note_retry(idx, attempt, stage, exc, delay)
                    if delay > 0.0:
                        time.sleep(delay)
                else:
                    state.complete(idx, output)
                    break

    def _make_pool(self):
        if self.pool is not None:
            return self.pool.acquire()
        if self.backend == "thread":
            return cf.ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        return cf.ProcessPoolExecutor(max_workers=self.max_workers,
                                      mp_context=ctx)

    def _respawn_pool(self, pool):
        """Replace a broken pool; a shared provider respawns its own."""
        if self.pool is not None:
            return self.pool.respawn()
        pool.shutdown(wait=False, cancel_futures=True)
        return self._make_pool()

    def _release_pool(self, pool):
        """End-of-sweep teardown; a shared pool outlives the sweep."""
        if self.pool is None:
            pool.shutdown(wait=True)

    def _handle_failure(self, state, queue, idx, attempt, stage, exc):
        """Requeue a failed chunk with backoff, or declare it exhausted."""
        if attempt >= self.retry.max_retries:
            state.fail_chunk(idx, stage, exc)
            return
        next_attempt = attempt + 1
        delay = self.retry.delay(next_attempt, chunk=idx)
        state.note_retry(idx, next_attempt, stage, exc, delay)
        queue.append((idx, next_attempt, time.perf_counter() + delay))

    def _wait_timeout(self, pending, queue):
        """Seconds until the next deadline or backoff expiry (or None)."""
        now = time.perf_counter()
        horizon = None
        for _idx, _attempt, deadline in pending.values():
            if deadline is not None:
                horizon = (deadline if horizon is None
                           else min(horizon, deadline))
        for _idx, _attempt, not_before in queue:
            if not_before > now:
                horizon = (not_before if horizon is None
                           else min(horizon, not_before))
        if horizon is None:
            return None
        return max(0.0, horizon - now)

    def _run_pooled(self, analyzer, budget, on_failure, parent_span,
                    state):
        """Bounded-in-flight dispatch with budget gate, retry, timeout.

        At most ``max_workers`` chunks are in flight; before dispatching
        more work the budget is checked, and on exhaustion the chunks
        not yet submitted (including requeued retries) are *not*
        dispatched while everything already submitted runs to
        completion.  A broken process pool is respawned and every
        in-flight chunk requeued with its attempt count bumped; a chunk
        past its per-chunk timeout is abandoned (its late result is
        discarded) and requeued.
        """
        retry = self.retry
        queue = collections.deque(
            (idx, 0, 0.0) for idx in state.todo())
        pending = {}
        pool = self._make_pool()
        try:
            while queue or pending:
                if queue and budget.exceeded() is not None:
                    state.skip(idx for idx, _a, _t in queue)
                    queue.clear()
                now = time.perf_counter()
                deferred = []
                while queue and len(pending) < self.max_workers:
                    idx, attempt, not_before = queue.popleft()
                    if not_before > now:
                        deferred.append((idx, attempt, not_before))
                        continue
                    self._fire_dispatch(state.chunks[idx][0])
                    deadline = (now + retry.chunk_timeout_seconds
                                if retry.chunk_timeout_seconds is not None
                                else None)
                    future = pool.submit(
                        _run_chunk, analyzer, state.chunks[idx][1],
                        on_failure, self.solver, parent_span,
                        self.backend == "process", time.perf_counter(),
                        self.faults, attempt, state.chunks[idx][0])
                    pending[future] = (idx, attempt, deadline)
                queue.extend(deferred)
                if not pending:
                    if not queue:
                        break
                    # Every runnable chunk is waiting out its backoff.
                    time.sleep(self._wait_timeout(pending, queue) or 0.0)
                    continue
                done, _ = cf.wait(pending,
                                  timeout=self._wait_timeout(pending,
                                                             queue),
                                  return_when=cf.FIRST_COMPLETED)
                broken = False
                for future in done:
                    idx, attempt, _deadline = pending.pop(future)
                    try:
                        output = future.result()
                    except ReproError:
                        raise
                    except cf.BrokenExecutor as exc:
                        broken = True
                        self._handle_failure(state, queue, idx, attempt,
                                             "worker-crash", exc)
                    except Exception as exc:  # scn: ignore[SCN002]
                        # Resilience boundary (see _run_serial).
                        stage = ("worker-crash"
                                 if isinstance(exc, InjectedWorkerCrash)
                                 else "retry-exhausted")
                        self._handle_failure(state, queue, idx, attempt,
                                             stage, exc)
                    else:
                        state.complete(idx, output)
                now = time.perf_counter()
                expired = [future for future, (_i, _a, deadline)
                           in pending.items()
                           if deadline is not None and now >= deadline]
                for future in expired:
                    idx, attempt, _deadline = pending.pop(future)
                    future.cancel()
                    exc = TimeoutError(
                        f"chunk exceeded its "
                        f"{retry.chunk_timeout_seconds:.3g} s timeout")
                    self._handle_failure(state, queue, idx, attempt,
                                         "timeout", exc)
                if broken:
                    # The pool is dead: every still-pending future will
                    # fail with the same BrokenExecutor. Requeue them
                    # all against a fresh pool.
                    for future, (idx, attempt, _d) in list(
                            pending.items()):
                        self._handle_failure(
                            state, queue, idx, attempt, "worker-crash",
                            cf.BrokenExecutor(
                                "sibling of a crashed worker"))
                    pending.clear()
                    pool = self._respawn_pool(pool)
        finally:
            # Abandon not-yet-started chunks when a worker raised
            # (on_failure="raise") or the sweep was killed; no-op on
            # the clean path where ``pending`` is already empty.
            for future in pending:
                future.cancel()
            self._release_pool(pool)

    # -- merging -------------------------------------------------------------

    @staticmethod
    def _merge(freqs, state, budget, report, width=1):
        """Stitch chunk outputs back into one sweep, in index order.

        In attribution mode (``width > 1``) the merge buffer is
        ``(n_freq, width)`` and a chunk that failed or was skipped
        leaves its whole rows NaN — total and budget columns together.
        """
        values = np.full(freqs.shape if width == 1
                         else (freqs.size, width), np.nan)
        failures = []
        attempts = []
        for idx, (start, chunk) in enumerate(state.chunks):
            output = state.outputs.get(idx)
            if output is not None:
                (chunk_values, chunk_failures, chunk_attempts,
                 findings, _obs) = output
                values[start:start + chunk.size] = chunk_values
                for failure in chunk_failures:
                    failures.append(dataclasses.replace(
                        failure, index=failure.index + start))
                attempts.extend(chunk_attempts)
                report.merge(findings)
            elif idx in state.chunk_errors:
                stage, error, message = state.chunk_errors[idx]
                for k in range(start, start + chunk.size):
                    failures.append(FrequencyFailure(
                        frequency=float(freqs[k]), index=k, stage=stage,
                        error=error, message=message))
        if state.skipped:
            reason = budget.exceeded() or "budget exhausted"
            n_skipped = 0
            for idx in sorted(state.skipped):
                start, chunk = state.chunks[idx]
                n_skipped += chunk.size
                for k in range(start, start + chunk.size):
                    failures.append(FrequencyFailure(
                        frequency=float(freqs[k]), index=k,
                        stage="budget", error="BudgetExceededError",
                        message=reason))
            report.error(
                "budget-exhausted",
                f"sweep budget spent before {n_skipped} of "
                f"{freqs.size} frequencies: {reason}",
                skipped=n_skipped, reason=reason)
            logger.warning(
                "sweep budget spent: %d chunks not dispatched "
                "(%d frequencies)", len(state.skipped), n_skipped)
        failures.sort(key=lambda failure: failure.index)
        return values, failures, attempts
