"""Parameterised builders for the circuits evaluated in the paper.

Each builder returns either a ready-to-analyse
:class:`~repro.lptv.system.PiecewiseLTISystem` (switched RC, built from
first principles) or a
:class:`~repro.circuit.statespace.SwitchedCircuitModel` (netlist-based
circuits) together with the component values quoted in the text.
"""

from .corners import (
    NOMINAL_TEMPERATURE_K,
    CornerSpec,
    ParameterGrid,
    scale_system_noise,
)
from .switched_rc import SwitchedRcParams, switched_rc_system
from .sc_lowpass import ScLowpassParams, sc_lowpass_netlist, sc_lowpass_system
from .sc_bandpass import (
    ScBandpassParams,
    sc_bandpass_netlist,
    sc_bandpass_system,
)
from .sc_integrator import (
    ScIntegratorParams,
    sc_integrator_netlist,
    sc_integrator_system,
)
from .sample_hold import SampleHoldParams, sample_hold_netlist, sample_hold_system

__all__ = [
    "NOMINAL_TEMPERATURE_K",
    "CornerSpec",
    "ParameterGrid",
    "scale_system_noise",
    "SwitchedRcParams",
    "switched_rc_system",
    "ScLowpassParams",
    "sc_lowpass_netlist",
    "sc_lowpass_system",
    "ScBandpassParams",
    "sc_bandpass_netlist",
    "sc_bandpass_system",
    "ScIntegratorParams",
    "sc_integrator_netlist",
    "sc_integrator_system",
    "SampleHoldParams",
    "sample_hold_netlist",
    "sample_hold_system",
]
