"""The periodically switched RC circuit (paper Fig. 2, Rice's circuit).

A resistor ``R`` (the closed switch, thermally noisy) charges a grounded
capacitor ``C`` during the *track* phase ``nT <= t <= nT + dT``; during
the *hold* phase the switch is open and the capacitor voltage is frozen.
The only noise source is the switch's thermal current with double-sided
PSD ``I = 2kT/R`` (paper eq. (22)).

State: the capacitor voltage. Track phase::

    C dV = -(V/R) dt + sqrt(I) dW    =>   A = -1/(RC),  B = sqrt(I)/C

Hold phase: ``A = 0, B = 0``.

In periodic steady state the variance is the constant ``kT/C``
independent of duty cycle — the classic result the paper re-derives and
our test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..lptv.system import Phase, PiecewiseLTISystem
from ..units import BOLTZMANN, ROOM_TEMPERATURE

#: Default capacitance, 1 nF: against 10 kΩ this gives RC = 10 µs.
SWITCHED_RC_CAPACITANCE = 1e-9
#: Default clock period, 100 µs, putting the paper's Fig. 3 sweep
#: variable at T/(RC) = 10 with the values above.
SWITCHED_RC_PERIOD = 1e-4


@dataclass(frozen=True)
class SwitchedRcParams:
    """Component values for the switched RC circuit.

    The paper's Fig. 3 sweeps the *ratio* ``T / (RC)`` and the duty cycle
    ``d``; absolute values only scale the axes.
    """

    resistance: float = 10e3
    capacitance: float = SWITCHED_RC_CAPACITANCE
    #: Clock period [s].
    period: float = SWITCHED_RC_PERIOD
    #: Duty cycle: fraction of the period the switch is closed.
    duty: float = 0.5
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self):
        if self.resistance <= 0.0 or self.capacitance <= 0.0:
            raise ReproError("R and C must be positive")
        if not 0.0 < self.duty < 1.0:
            raise ReproError(f"duty cycle must be in (0, 1): {self.duty}")
        if self.period <= 0.0:
            raise ReproError(f"period must be positive: {self.period}")

    @property
    def tau(self):
        """RC time constant."""
        return self.resistance * self.capacitance

    @property
    def period_over_tau(self):
        """The ratio ``T / RC`` the paper's Fig. 3 is parameterised by."""
        return self.period / self.tau

    @property
    def ktc_variance(self):
        """The textbook steady-state variance ``kT/C``."""
        return BOLTZMANN * self.temperature / self.capacitance

    @property
    def noise_intensity(self):
        """Double-sided PSD of the switch thermal current, ``2kT/R``."""
        return 2.0 * BOLTZMANN * self.temperature / self.resistance


def switched_rc_system(params=None, **kwargs):
    """Build the switched RC circuit as a two-phase LPTV system.

    Accepts either a :class:`SwitchedRcParams` or keyword overrides of its
    fields. The single output is the capacitor voltage.
    """
    if params is None:
        params = SwitchedRcParams(**kwargs)
    elif kwargs:
        raise ReproError("pass either params or keyword overrides, not both")
    a_track = np.array([[-1.0 / params.tau]])
    b_track = np.array([[np.sqrt(params.noise_intensity)
                         / params.capacitance]])
    track = Phase(name="track", duration=params.duty * params.period,
                  a_matrix=a_track, b_matrix=b_track)
    hold = Phase(name="hold",
                 duration=(1.0 - params.duty) * params.period,
                 a_matrix=np.zeros((1, 1)), b_matrix=np.zeros((1, 1)))
    return PiecewiseLTISystem(
        phases=[track, hold], output_matrix=np.array([[1.0]]),
        state_names=["v_cap"], output_names=["v_out"])
