"""Track-and-hold stage with source resistance.

The canonical kT/C circuit: a source resistance plus switch charge a hold
capacitor during the track phase; the capacitor floats during hold. It
differs from :mod:`repro.circuits.switched_rc` only in separating the
source resistance from the switch resistance (two distinct thermal
sources), which makes it the smallest circuit on which the per-source
cross-spectral contribution report is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..circuit.netlist import Netlist
from ..circuit.phases import ClockSchedule
from ..circuit.statespace import build_lptv_system
from ..units import BOLTZMANN, ROOM_TEMPERATURE

#: Hold capacitor, 10 pF: kT/C ≈ (20.3 µV)² at 300 K — the textbook
#: track-and-hold sizing the sampled-noise checks are written against.
SAMPLE_HOLD_C_HOLD = 10e-12
#: Clock rate, 1 MHz (a round video-rate T&H figure).
SAMPLE_HOLD_F_CLOCK = 1e6


@dataclass(frozen=True)
class SampleHoldParams:
    """Component values for the track-and-hold stage."""

    r_source: float = 1e3
    r_switch: float = 200.0
    c_hold: float = SAMPLE_HOLD_C_HOLD
    f_clock: float = SAMPLE_HOLD_F_CLOCK
    duty: float = 0.5
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self):
        if not 0.0 < self.duty < 1.0:
            raise ReproError(f"duty must be in (0, 1), got {self.duty}")

    @property
    def ktc_variance(self):
        """Total sampled noise power, the classic ``kT/C``."""
        return BOLTZMANN * self.temperature / self.c_hold

    @property
    def track_tau(self):
        """Track-phase time constant ``(R_s + R_on) C``."""
        return (self.r_source + self.r_switch) * self.c_hold


def sample_hold_netlist(params=None, **kwargs):
    """Build the netlist; returns ``(netlist, schedule)``."""
    if params is None:
        params = SampleHoldParams(**kwargs)
    elif kwargs:
        raise ReproError("pass either params or keyword overrides, not both")
    netlist = Netlist("sample-hold")
    netlist.add_voltage_source("Vin", "vin", "0", 0.0)
    netlist.add_resistor("Rs", "vin", "a", params.r_source,
                         temperature=params.temperature)
    netlist.add_switch("S1", "a", "out", ("track",), ron=params.r_switch,
                       temperature=params.temperature)
    netlist.add_capacitor("Ch", "out", "0", params.c_hold)
    schedule = ClockSchedule(
        phase_names=("track", "hold"),
        durations=(params.duty / params.f_clock,
                   (1.0 - params.duty) / params.f_clock))
    return netlist, schedule


def sample_hold_system(params=None, **kwargs):
    """Build the full model; the analysed output is the hold capacitor."""
    netlist, schedule = sample_hold_netlist(params, **kwargs)
    return build_lptv_system(netlist, schedule, outputs=["out"])
