"""Switched-capacitor low-pass filter (paper Fig. 6, Tóth et al. [8]).

The exact schematic of [8] is not available, so the topology is
reconstructed from everything the text states about it:

* capacitors 300 pF, 100 pF, 100 pF (C1, C2, C3);
* switches named S4, S5, S6 with 80 Ω on-resistance, clock 4 kHz;
* the integrating-phase charge relation ``C1 ΔV1 = C2 ΔV2 + C3 ΔV3``
  (all three capacitors meet at the virtual ground when integrating);
* "the sampled data nature depends strongly on the noise voltage sampled
  by C3", sampled through S5 from the output and dumped through S6;
* an op-amp with a white noise source at its non-inverting input and one
  of the two macromodels of Fig. 6 (a)/(b).

This is the classic **damped (lossy) SC integrator**, a first-order
low-pass:

* input branch — C1 from node ``a`` to ground; S1 connects ``a`` to the
  input during φ1 (sampling), S4 connects ``a`` to the virtual ground
  during φ2 (integrating);
* damping branch — C3 from node ``c`` to ground; S5 samples the output
  onto C3 during φ1, S6 dumps that charge into the virtual ground during
  φ2;
* integrator — C2 from the virtual ground to the op-amp output.

During φ2, C1, C2 and C3 share the virtual-ground node: charge
conservation there is exactly ``C1 ΔV1 = C2 ΔV2 + C3 ΔV3``. DC gain is
``−C1/C3 = −3`` and the cut-off is ``≈ f_clk C3 / (2π C2) ≈ 0.64 kHz``
for the quoted values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ReproError
from ..circuit.netlist import Netlist
from ..circuit.opamp import (
    add_single_stage_opamp,
    add_source_follower_opamp,
)
from ..circuit.phases import ClockSchedule
from ..circuit.statespace import build_lptv_system

#: The paper's quoted op-amp input noise: "a white noise source with a
#: PSD of −61.5 dB" [V²/Hz, double-sided].
PAPER_OPAMP_NOISE_PSD = 10.0 ** (-61.5 / 10.0)

#: The paper's quoted unity-gain frequency for the source-follower model.
PAPER_WU_SOURCE_FOLLOWER = 9.0e6 * math.pi

#: ... and for the single-stage model, with its 100 pF equivalent cap.
PAPER_WU_SINGLE_STAGE = 2.0e7 * math.pi
#: Equivalent capacitance of the single-stage macromodel (Fig. 6b).
PAPER_CEQ_SINGLE_STAGE = 100e-12

#: Paper component values ("capacitors 300 pF, 100 pF, 100 pF"):
#: input sampling cap C1, integrating cap C2, damping cap C3.
SC_LOWPASS_C1 = 300e-12
#: Integrating capacitor C2 = 100 pF.
SC_LOWPASS_C2 = 100e-12
#: Damping capacitor C3 = 100 pF (sets DC gain −C1/C3 = −3).
SC_LOWPASS_C3 = 100e-12


@dataclass(frozen=True)
class ScLowpassParams:
    """Component values; defaults are the paper's quoted numbers."""

    c1: float = SC_LOWPASS_C1
    c2: float = SC_LOWPASS_C2
    c3: float = SC_LOWPASS_C3
    #: On-resistances of the named switches (the Fig. 8 sweep).
    r1: float = 80.0
    r4: float = 80.0
    r5: float = 80.0
    r6: float = 80.0
    f_clock: float = 4e3
    #: Op-amp model: "source-follower" (Fig. 6a) or "single-stage"
    #: (Fig. 6b).
    opamp_model: str = "source-follower"
    #: Unity-gain frequency [rad/s]; ``None`` = paper value per model,
    #: ``float("inf")`` = ideal integrator (Fig. 9 curve (c)).
    opamp_wu: float | None = None
    #: Equivalent capacitance for the single-stage model.
    opamp_ceq: float = PAPER_CEQ_SINGLE_STAGE
    opamp_noise_psd: float = PAPER_OPAMP_NOISE_PSD

    def __post_init__(self):
        if self.opamp_model not in ("source-follower", "single-stage"):
            raise ReproError(
                f"unknown op-amp model {self.opamp_model!r}; use "
                "'source-follower' or 'single-stage'")
        for label, value in (("c1", self.c1), ("c2", self.c2),
                             ("c3", self.c3), ("f_clock", self.f_clock)):
            if value <= 0.0:
                raise ReproError(f"{label} must be positive, got {value}")

    @property
    def resolved_wu(self):
        if self.opamp_wu is not None:
            return self.opamp_wu
        return (PAPER_WU_SOURCE_FOLLOWER
                if self.opamp_model == "source-follower"
                else PAPER_WU_SINGLE_STAGE)

    @property
    def dc_gain_magnitude(self):
        """Ideal DC gain magnitude ``C1/C3``."""
        return self.c1 / self.c3

    @property
    def cutoff_hz(self):
        """Approximate −3 dB frequency ``f_clk C3/(2π C2)``."""
        return self.f_clock * self.c3 / (2.0 * math.pi * self.c2)


def sc_lowpass_netlist(params=None, **kwargs):
    """Build the netlist; returns ``(netlist, schedule)``."""
    if params is None:
        params = ScLowpassParams(**kwargs)
    elif kwargs:
        raise ReproError("pass either params or keyword overrides, not both")
    netlist = Netlist("sc-lowpass")
    netlist.add_voltage_source("Vin", "vin", "0", 0.0)
    # Input branch.
    netlist.add_capacitor("C1", "a", "0", params.c1)
    netlist.add_switch("S1", "vin", "a", ("phi1",), ron=params.r1)
    netlist.add_switch("S4", "a", "vsum", ("phi2",), ron=params.r4)
    # Damping branch.
    netlist.add_capacitor("C3", "c", "0", params.c3)
    netlist.add_switch("S5", "c", "vout", ("phi1",), ron=params.r5)
    netlist.add_switch("S6", "c", "vsum", ("phi2",), ron=params.r6)
    # Integrator.
    netlist.add_capacitor("C2", "vsum", "vout", params.c2)
    wu = params.resolved_wu
    if params.opamp_model == "source-follower":
        if math.isinf(wu):
            from ..circuit.opamp import add_ideal_opamp
            add_ideal_opamp(netlist, "op", "0", "vsum", "vout")
            if params.opamp_noise_psd > 0.0:
                # With an ideal op-amp the input-referred source appears
                # directly at the non-inverting input node.
                netlist.add_noise_voltage("VNop", "nplus", "0",
                                          params.opamp_noise_psd)
                # Rebuild the VCVS control to use the noisy input node.
                raise ReproError(
                    "ideal op-amp with input noise: use a large but "
                    "finite opamp_wu instead (e.g. 1e12) — the infinite- "
                    "bandwidth limit with white input noise has unbounded "
                    "output noise power")
        else:
            add_source_follower_opamp(
                netlist, "op", "0", "vsum", "vout", unity_gain_radps=wu,
                input_noise_psd=params.opamp_noise_psd)
    else:
        if math.isinf(wu):
            raise ReproError("single-stage model needs a finite wu")
        add_single_stage_opamp(
            netlist, "op", "0", "vsum", "vout", unity_gain_radps=wu,
            c_equiv=params.opamp_ceq,
            input_noise_psd=params.opamp_noise_psd)
    schedule = ClockSchedule.two_phase(params.f_clock, duty=0.5,
                                       names=("phi1", "phi2"))
    return netlist, schedule


def sc_lowpass_system(params=None, **kwargs):
    """Build the full model; returns a ``SwitchedCircuitModel``.

    The analysed output is the op-amp output voltage ``vout``.
    """
    netlist, schedule = sc_lowpass_netlist(params, **kwargs)
    return build_lptv_system(netlist, schedule, outputs=["vout"])
