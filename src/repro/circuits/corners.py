"""Parameter families for corner/mismatch sweeps (DESIGN.md §12).

A *corner* perturbs a circuit in one (or both) of two orthogonal ways:

* **dynamics overrides** — new component values (capacitors, switch
  on-resistances, op-amp bandwidth) applied to the builder's frozen
  params dataclass via :func:`dataclasses.replace`.  These change the
  ``A`` matrices, so the corner needs its own propagators, covariance,
  and spectral bases;
* **noise-intensity scales** — multipliers on the double-sided noise
  PSDs (temperature scaling, a noisier op-amp).  These leave every
  ``A`` matrix untouched: only ``B B^T`` scales, and the MFT pipeline is
  *linear* in it, so an intensity-only corner shares all Van Loan /
  propagator / eigenbasis work with its dynamics root and is nearly
  free (:meth:`repro.mft.context.SweepContext.derive_intensity_scaled`).

:class:`ParameterGrid` holds an ordered list of :class:`CornerSpec` and
knows how to build the per-corner models, resolve per-source intensity
scales against a model's noise labels, and fingerprint the whole family
(:meth:`ParameterGrid.family_hash`) so corner-sweep cache entries can
never alias a plain sweep's (see ``sweep_context_for(family=)``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import ReproError
from ..typing import FloatArray

__all__ = [
    "CornerSpec",
    "ParameterGrid",
    "NOMINAL_TEMPERATURE_K",
    "scale_system_noise",
]

#: Reference temperature [K] for :meth:`CornerSpec.temperature`: thermal
#: noise PSDs scale as ``T / NOMINAL_TEMPERATURE_K`` (4kTR with the
#: nominal value baked into the component models).
NOMINAL_TEMPERATURE_K = 300.0


@dataclass(frozen=True)
class CornerSpec:
    """One corner: named dynamics overrides plus a noise-intensity scale.

    ``overrides`` maps builder-params field names to new values (empty
    for an intensity-only corner).  ``noise_scale`` multiplies the
    double-sided noise *PSDs* (so the ``B`` columns scale by its square
    root): a scalar applies to every source; a mapping applies per
    source, keyed by noise label (or integer column index), with
    unlisted sources at 1.0.
    """

    name: str
    overrides: dict[str, Any] = field(default_factory=dict)
    noise_scale: float | dict[Any, float] = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("corner name must be non-empty")
        object.__setattr__(self, "overrides", dict(self.overrides))
        scale = self.noise_scale
        bad: dict[Any, float]
        if isinstance(scale, dict):
            scale = {key: float(value) for key, value in scale.items()}
            object.__setattr__(self, "noise_scale", scale)
            bad = {k: v for k, v in scale.items()
                   if not v > 0.0 or not np.isfinite(v)}
        else:
            scale = float(scale)
            object.__setattr__(self, "noise_scale", scale)
            bad = ({} if (scale > 0.0 and np.isfinite(scale))
                   else {"noise_scale": scale})
        if bad:
            raise ReproError(
                f"corner {self.name!r}: noise PSD scales must be finite "
                f"and positive, got {bad}")

    @classmethod
    def temperature(cls, kelvin: float,
                    nominal: float = NOMINAL_TEMPERATURE_K,
                    name: str | None = None) -> "CornerSpec":
        """Intensity-only corner scaling every PSD by ``T / nominal``."""
        kelvin = float(kelvin)
        if not kelvin > 0.0:
            raise ReproError(f"temperature must be positive, got {kelvin}")
        if name is None:
            name = f"T={kelvin:g}K"
        return cls(name=name, noise_scale=kelvin / float(nominal))

    @property
    def intensity_only(self) -> bool:
        """True when the corner changes only noise intensities."""
        return not self.overrides

    @property
    def uniform_scale(self) -> float | None:
        """The scalar PSD multiplier, or ``None`` for per-source maps."""
        if isinstance(self.noise_scale, dict):
            return None
        return float(self.noise_scale)

    def overrides_key(self) -> tuple[tuple[str, str], ...]:
        """Hashable identity of the dynamics overrides."""
        return tuple(sorted(
            (str(k), repr(v)) for k, v in self.overrides.items()))

    def resolved_scales(self, noise_labels: Sequence[str] | None,
                        n_sources: int) -> FloatArray:
        """Per-source PSD multipliers as a float array of ``n_sources``.

        Mapping keys are matched against ``noise_labels`` first, then
        accepted as integer column indices; an unknown key raises with
        the known labels listed.
        """
        scale = self.noise_scale
        if not isinstance(scale, dict):
            return np.full(int(n_sources), float(scale))
        out = np.ones(int(n_sources))
        labels = list(noise_labels or [])
        for key, value in scale.items():
            if key in labels:
                out[labels.index(key)] = value
                continue
            if isinstance(key, int) and 0 <= key < n_sources:
                out[key] = value
                continue
            raise ReproError(
                f"corner {self.name!r}: unknown noise source {key!r}; "
                f"labels are {labels or '(none — use column indices)'}")
        return out


def scale_system_noise(system: Any,
                       scales: float | FloatArray) -> Any:
    """A copy of ``system`` whose noise PSDs are scaled by ``scales``.

    ``scales`` is a scalar PSD multiplier or a per-source array (one
    entry per noise column); the ``B`` columns — square roots of the
    double-sided PSDs — are scaled by ``sqrt(scales)``.  Only works for
    phase-based systems (:class:`~repro.lptv.system.PiecewiseLTISystem`);
    sampled systems have no content to rescale.
    """
    phases = getattr(system, "phases", None)
    if phases is None:
        raise ReproError(
            "intensity scaling needs a phase-based LPTV system, got "
            f"{type(system).__name__}")
    scale_arr = np.atleast_1d(np.asarray(scales, dtype=float))
    if not np.all(np.isfinite(scale_arr)) or not np.all(scale_arr > 0.0):
        raise ReproError(
            "noise PSD scales must be finite and positive, got "
            f"{scale_arr}")
    amplitude = np.sqrt(scale_arr)
    new_phases = []
    for phase in phases:
        b = np.asarray(phase.b_matrix)
        if amplitude.size not in (1, b.shape[1]):
            raise ReproError(
                f"{amplitude.size} noise scales for a phase with "
                f"{b.shape[1]} noise columns")
        new_phases.append(dataclasses.replace(
            phase, b_matrix=b * amplitude[None, :]))
    return dataclasses.replace(system, phases=new_phases)


class ParameterGrid:
    """An ordered family of :class:`CornerSpec` over one base circuit.

    Parameters
    ----------
    corners:
        The corner list (order defines the ``M`` axis of every corner
        sweep result).
    builder:
        Callable mapping a params dataclass to a model/system (e.g.
        :func:`~repro.circuits.sc_lowpass.sc_lowpass_system`).  Required
        only when any corner carries dynamics overrides; a purely
        intensity-scaled grid can run against the analysis's own model.
    base_params:
        The frozen params dataclass the overrides are replayed onto.
    """

    def __init__(self, corners: Iterable[CornerSpec],
                 builder: Callable[[Any], Any] | None = None,
                 base_params: Any = None) -> None:
        corner_list = list(corners)
        if not corner_list:
            raise ReproError("parameter grid needs at least one corner")
        for corner in corner_list:
            if not isinstance(corner, CornerSpec):
                raise ReproError(
                    "grid entries must be CornerSpec instances, got "
                    f"{type(corner).__name__}")
        names = [corner.name for corner in corner_list]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ReproError(f"duplicate corner names: {dupes}")
        needs_builder = [c.name for c in corner_list if c.overrides]
        if needs_builder and (builder is None or base_params is None):
            raise ReproError(
                "corners with dynamics overrides need builder= and "
                f"base_params= (overriding corners: {needs_builder})")
        self.corners = corner_list
        self.builder = builder
        self.base_params = base_params
        self._models: dict[tuple[tuple[str, str], ...], Any] = {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_corners(cls, corners: Iterable[CornerSpec],
                     builder: Callable[[Any], Any] | None = None,
                     base_params: Any = None) -> "ParameterGrid":
        """Grid from an explicit corner list (the general form)."""
        return cls(corners, builder=builder, base_params=base_params)

    @classmethod
    def cross(cls, dynamics: Mapping[str, Mapping[str, Any]],
              intensities: Mapping[str, float | dict[Any, float]],
              builder: Callable[[Any], Any] | None = None,
              base_params: Any = None) -> "ParameterGrid":
        """Cartesian product of dynamics corners × intensity corners.

        ``dynamics`` maps corner names to override dicts (use ``{}`` for
        the nominal member); ``intensities`` maps corner names to PSD
        scales (scalar or per-source mapping).  The product order is
        dynamics-major, so corners sharing dynamics are adjacent — the
        layout the batched solver groups for free.
        """
        if not dynamics or not intensities:
            raise ReproError(
                "cross() needs at least one dynamics and one intensity "
                "corner")
        corners = [
            CornerSpec(name=f"{dname}/{iname}", overrides=dict(overrides),
                       noise_scale=scale)
            for (dname, overrides), (iname, scale)
            in itertools.product(dynamics.items(), intensities.items())]
        return cls(corners, builder=builder, base_params=base_params)

    @classmethod
    def mismatch(cls, fields: Sequence[str], sigma: float,
                 n_corners: int, seed: int,
                 builder: Callable[[Any], Any] | None = None,
                 base_params: Any = None) -> "ParameterGrid":
        """Seeded Monte-Carlo mismatch grid: relative Gaussian spreads.

        Each corner perturbs every named params field by
        ``value · (1 + sigma · z)`` with ``z ~ N(0, 1)`` from
        ``numpy.random.default_rng(seed)`` — the seed is **required**
        (deterministic-replay hygiene: an unseeded grid could never be
        resumed or reproduced).
        """
        if base_params is None or builder is None:
            raise ReproError("mismatch grids need builder= and "
                             "base_params=")
        field_list = list(fields)
        if not field_list:
            raise ReproError("mismatch() needs at least one field name")
        sigma = float(sigma)
        n_corners = int(n_corners)
        if n_corners < 1:
            raise ReproError(f"n_corners must be >= 1, got {n_corners}")
        rng = np.random.default_rng(seed)
        corners = []
        for k in range(n_corners):
            draws = rng.standard_normal(len(field_list))
            overrides = {}
            for name, z in zip(field_list, draws):
                nominal = getattr(base_params, name)
                overrides[name] = float(nominal) * (1.0 + sigma * z)
            corners.append(CornerSpec(name=f"mc{k:03d}",
                                      overrides=overrides))
        return cls(corners, builder=builder, base_params=base_params)

    # -- accessors -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.corners)

    def __iter__(self) -> Iterator[CornerSpec]:
        return iter(self.corners)

    @property
    def names(self) -> list[str]:
        """Corner names, in grid (``M`` axis) order."""
        return [corner.name for corner in self.corners]

    def build_model(self, index: int) -> Any:
        """Model for corner ``index``'s *dynamics* (intensity excluded).

        Cached per distinct overrides key: intensity-only corners of one
        dynamics point share a single built model, which is what lets
        the sweep derive their contexts instead of rebuilding.  Returns
        ``None`` for override-free corners of a builder-less grid (the
        caller falls back to its own base model).
        """
        corner = self.corners[int(index)]
        if not corner.overrides and self.builder is None:
            return None
        key = corner.overrides_key()
        model = self._models.get(key)
        if model is None:
            assert self.builder is not None  # checked in __init__
            params = dataclasses.replace(self.base_params,
                                         **corner.overrides)
            model = self.builder(params)
            self._models[key] = model
        return model

    def family_hash(self) -> str:
        """Content hash of the whole corner family.

        Salts the :mod:`repro.mft.context` registry keys (and the
        executor checkpoint key) of a corner sweep, so a derived
        context can never be served to — or poisoned by — a plain sweep
        whose system happens to fingerprint identically.
        """
        digest = hashlib.sha256()
        digest.update(repr(self.base_params).encode())
        for corner in self.corners:
            digest.update(corner.name.encode())
            digest.update(repr(corner.overrides_key()).encode())
            digest.update(repr(corner.noise_scale).encode())
            digest.update(b"|")
        return digest.hexdigest()[:16]

    def __repr__(self) -> str:
        return (f"ParameterGrid({len(self.corners)} corners, "
                f"family={self.family_hash()})")
