"""Switched-capacitor band-pass filter (paper Fig. 4, Tóth–Suyama [44]).

The schematic of [44] is not available; the text quotes a 128 kHz clock,
80 Ω noisy switches and a 20 nV/√Hz op-amp input noise. We therefore
build the canonical **two-integrator-loop SC biquad** (Tow–Thomas
resonator) with those parameters — it preserves the evaluated behaviour
class: a band-pass LPTV noise-shaping circuit where switch kT/C noise and
op-amp noise fold around the clock harmonics.

Structure (all switched-cap branches are grounded-toggle branches:
``phi1`` charge from the source node, ``phi2`` dump into a virtual
ground):

* integrator 1 (band-pass output ``v1``): input branch ``Cin`` from
  ``vin``; damping branch ``Cq`` sampling ``v1`` (sets Q); feedback
  branch ``Cf1`` sampling ``v2``; integrating cap ``Ci1``.
* integrator 2 (low-pass output ``v2``): input branch ``Cf2`` sampling
  ``v1``; integrating cap ``Ci2``.

Per-cycle integrator gains ``k = C/Ci`` place the resonance at
``f0 ≈ f_clk √(k1 k2) / 2π`` with quality factor ``Q ≈ √(k1 k2)/k_q``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ReproError
from ..circuit.netlist import Netlist
from ..circuit.opamp import add_source_follower_opamp
from ..circuit.phases import ClockSchedule
from ..circuit.statespace import build_lptv_system

#: 20 nV/√Hz single-sided input noise, as a double-sided PSD [V²/Hz].
PAPER_OPAMP_NOISE_PSD = 0.5 * (20e-9) ** 2

#: Integrating capacitance of both loop integrators (10 pF — typical
#: audio-band SC biquad sizing; the response depends only on ratios).
SC_BANDPASS_C_INTEGRATE = 10e-12
#: Op-amp unity-gain bandwidth, 20 MHz (fast settling at f_clk 128 kHz).
SC_BANDPASS_OPAMP_WU = 2.0 * math.pi * 20e6


@dataclass(frozen=True)
class ScBandpassParams:
    """Design parameters; f0/Q are realised through capacitor ratios."""

    f_clock: float = 128e3
    f_center: float = 10e3
    q_factor: float = 8.0
    c_integrate: float = SC_BANDPASS_C_INTEGRATE
    ron: float = 80.0
    opamp_wu: float = SC_BANDPASS_OPAMP_WU
    opamp_noise_psd: float = PAPER_OPAMP_NOISE_PSD

    def __post_init__(self):
        if not 0.0 < self.f_center < self.f_clock / 2.0:
            raise ReproError(
                f"centre frequency {self.f_center} must lie below the "
                f"Nyquist frequency {self.f_clock / 2.0}")
        if self.q_factor <= 0.5:
            raise ReproError(f"Q must exceed 0.5, got {self.q_factor}")

    @property
    def k_resonator(self):
        """Per-cycle integrator gain ``k = 2 sin(π f0/f_clk)`` (LDI)."""
        return 2.0 * math.sin(math.pi * self.f_center / self.f_clock)

    @property
    def k_damping(self):
        return self.k_resonator / self.q_factor

    @property
    def c_in(self):
        """Input branch capacitor (unity centre-frequency gain ≈ Q)."""
        return self.k_damping * self.c_integrate

    @property
    def c_loop(self):
        """Loop branch capacitors ``Cf1 = Cf2``."""
        return self.k_resonator * self.c_integrate

    @property
    def c_q(self):
        """Damping branch capacitor."""
        return self.k_damping * self.c_integrate


def sc_bandpass_netlist(params=None, **kwargs):
    """Build the netlist; returns ``(netlist, schedule)``."""
    if params is None:
        params = ScBandpassParams(**kwargs)
    elif kwargs:
        raise ReproError("pass either params or keyword overrides, not both")
    netlist = Netlist("sc-bandpass")
    netlist.add_voltage_source("Vin", "vin", "0", 0.0)

    def toggle_branch(tag, cap_value, sample_node, dump_node,
                      sample_phase="phi1", dump_phase="phi2"):
        """Grounded switched-cap branch: charge, then dump.

        Dumps a *non-inverted* charge sample ``+C·v(sample_node)`` into
        the virtual ground, so through the inverting integrator the
        per-cycle gain is ``−C/Ci``.
        """
        top = f"n_{tag}"
        netlist.add_capacitor(f"C{tag}", top, "0", cap_value)
        netlist.add_switch(f"S{tag}a", sample_node, top, (sample_phase,),
                           ron=params.ron)
        netlist.add_switch(f"S{tag}b", top, dump_node, (dump_phase,),
                           ron=params.ron)

    def inverting_branch(tag, cap_value, sample_node, dump_node,
                         sample_phase="phi1", dump_phase="phi2"):
        """Plate-swapping (parasitic-insensitive inverting) branch.

        The sample phase charges the capacitor between ``sample_node``
        and ground; the dump phase flips the plates into the virtual
        ground, dumping ``−C·v``. Used where the resonator loop needs
        its sign inversion.
        """
        top = f"n_{tag}p"
        bot = f"n_{tag}m"
        netlist.add_capacitor(f"C{tag}", top, bot, cap_value)
        netlist.add_switch(f"S{tag}a", sample_node, top, (sample_phase,),
                           ron=params.ron)
        netlist.add_switch(f"S{tag}b", bot, "0", (sample_phase,),
                           ron=params.ron)
        netlist.add_switch(f"S{tag}c", top, "0", (dump_phase,),
                           ron=params.ron)
        netlist.add_switch(f"S{tag}d", bot, dump_node, (dump_phase,),
                           ron=params.ron)

    # Integrator 1: virtual ground "x1", output "v1" (band-pass).
    netlist.add_capacitor("Ci1", "x1", "v1", params.c_integrate)
    add_source_follower_opamp(netlist, "op1", "0", "x1", "v1",
                              unity_gain_radps=params.opamp_wu,
                              input_noise_psd=params.opamp_noise_psd)
    # Integrator 2: virtual ground "x2", output "v2" (low-pass).
    netlist.add_capacitor("Ci2", "x2", "v2", params.c_integrate)
    add_source_follower_opamp(netlist, "op2", "0", "x2", "v2",
                              unity_gain_radps=params.opamp_wu,
                              input_noise_psd=params.opamp_noise_psd)

    toggle_branch("in", params.c_in, "vin", "x1")    # signal input
    toggle_branch("q", params.c_q, "v1", "x1")       # damping (Q)
    # v1 -> integrator 2 runs on the opposite clock phasing (LDI ladder
    # timing): with both loop branches on the same phasing the two-cycle
    # loop delay pushes the resonant pair outside the unit circle.
    toggle_branch("f2", params.c_loop, "v1", "x2",
                  sample_phase="phi2", dump_phase="phi1")
    # Feedback v2 -> integrator 1 closes the loop. Both integrators
    # invert and both toggle branches are non-inverting, so this last
    # branch must invert for the loop to be a resonator (net −k² loop
    # gain) instead of a regenerative pair; the Floquet test pins this.
    inverting_branch("f1", params.c_loop, "v2", "x1")

    schedule = ClockSchedule.two_phase(params.f_clock, duty=0.5,
                                       names=("phi1", "phi2"))
    return netlist, schedule


def sc_bandpass_system(params=None, **kwargs):
    """Build the full model; the analysed output is ``v1`` (band-pass)."""
    netlist, schedule = sc_bandpass_netlist(params, **kwargs)
    return build_lptv_system(netlist, schedule, outputs=["v1"])
