"""Parasitic-insensitive switched-capacitor integrator (building block).

The elementary SC circuit: an input branch toggles charge ``C_s·v_in``
into the virtual ground of an op-amp integrator each cycle. A pure
integrator has a Floquet multiplier at ``z = 1`` (held there only by the
op-amp's finite DC gain), so noise analysis of the *undamped* circuit is
near-singular; an optional damping branch (``leak`` per cycle) makes the
steady state well-posed. Used by the examples and by the engine stress
tests close to marginal stability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ReproError
from ..circuit.netlist import Netlist
from ..circuit.opamp import add_source_follower_opamp
from ..circuit.phases import ClockSchedule
from ..circuit.statespace import build_lptv_system

#: Sampling capacitor, 1 pF — gain C_s/C_i = 0.1 per cycle with the
#: 10 pF integrating cap below.
SC_INTEGRATOR_C_SAMPLE = 1e-12
#: Integrating capacitor, 10 pF.
SC_INTEGRATOR_C_INTEGRATE = 10e-12
#: Op-amp unity-gain bandwidth, 10 MHz (≫ f_clk keeps settling complete).
SC_INTEGRATOR_OPAMP_WU = 2.0 * math.pi * 10e6


@dataclass(frozen=True)
class ScIntegratorParams:
    """Component values for the SC integrator."""

    c_sample: float = SC_INTEGRATOR_C_SAMPLE
    c_integrate: float = SC_INTEGRATOR_C_INTEGRATE
    #: Fraction of the integrated charge leaked per cycle (0 = pure
    #: integrator, held off singularity only by the op-amp DC gain).
    leak: float = 0.05
    f_clock: float = 100e3
    ron: float = 1e3
    opamp_wu: float = SC_INTEGRATOR_OPAMP_WU
    opamp_noise_psd: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.leak < 1.0:
            raise ReproError(f"leak must be in [0, 1), got {self.leak}")

    @property
    def gain_per_cycle(self):
        """Charge gain ``C_s / C_i`` per clock cycle."""
        return self.c_sample / self.c_integrate


def sc_integrator_netlist(params=None, **kwargs):
    """Build the netlist; returns ``(netlist, schedule)``."""
    if params is None:
        params = ScIntegratorParams(**kwargs)
    elif kwargs:
        raise ReproError("pass either params or keyword overrides, not both")
    netlist = Netlist("sc-integrator")
    netlist.add_voltage_source("Vin", "vin", "0", 0.0)
    netlist.add_capacitor("Cs", "a", "0", params.c_sample)
    netlist.add_switch("S1", "vin", "a", ("phi1",), ron=params.ron)
    netlist.add_switch("S2", "a", "vsum", ("phi2",), ron=params.ron)
    netlist.add_capacitor("Ci", "vsum", "vout", params.c_integrate)
    if params.leak > 0.0:
        c_leak = params.leak * params.c_integrate
        netlist.add_capacitor("Cl", "b", "0", c_leak)
        netlist.add_switch("S3", "b", "vout", ("phi1",), ron=params.ron)
        netlist.add_switch("S4", "b", "vsum", ("phi2",), ron=params.ron)
    add_source_follower_opamp(netlist, "op", "0", "vsum", "vout",
                              unity_gain_radps=params.opamp_wu,
                              input_noise_psd=params.opamp_noise_psd)
    schedule = ClockSchedule.two_phase(params.f_clock, duty=0.5,
                                       names=("phi1", "phi2"))
    return netlist, schedule


def sc_integrator_system(params=None, **kwargs):
    """Build the full model; the analysed output is ``vout``."""
    netlist, schedule = sc_integrator_netlist(params, **kwargs)
    return build_lptv_system(netlist, schedule, outputs=["vout"])
