"""Shared array-type vocabulary for the ``repro`` package.

Public array-returning APIs annotate their signatures with these aliases
instead of a bare ``np.ndarray`` (enforced by lint rule SCN005): the
alias names the *dtype contract* of the value, and the docstring states
the shape.  ``FloatArray`` vs ``ComplexArray`` matters here — the MFT
cross-spectral solves are intrinsically complex while covariances and
PSDs must come out real — so the distinction is part of each function's
numerical contract, not decoration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Union

import numpy as np

if TYPE_CHECKING:
    import numpy.typing as npt

    #: Any numpy array, dtype unspecified.  Prefer a dtyped alias below.
    Array = npt.NDArray[Any]
    #: Real double-precision array (covariances, PSDs, time grids).
    FloatArray = npt.NDArray[np.float64]
    #: Complex double-precision array (HTFs, envelope coefficients,
    #: cross-spectral fixed points).
    ComplexArray = npt.NDArray[np.complex128]
    #: Integer index/harmonic array.
    IntArray = npt.NDArray[np.int_]
    #: Boolean mask array.
    BoolArray = npt.NDArray[np.bool_]
    #: Anything convertible by ``np.asarray`` — input positions only.
    ArrayLike = npt.ArrayLike
else:  # pragma: no cover - runtime fallback keeps imports cheap
    Array = np.ndarray
    FloatArray = np.ndarray
    ComplexArray = np.ndarray
    IntArray = np.ndarray
    BoolArray = np.ndarray
    ArrayLike = Any

#: A scalar or an array of them — sweep APIs accept both.
ScalarOrArray = Union[float, "FloatArray"]

__all__ = [
    "Array",
    "FloatArray",
    "ComplexArray",
    "IntArray",
    "BoolArray",
    "ArrayLike",
    "ScalarOrArray",
]
