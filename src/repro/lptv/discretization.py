"""One-period discretization: the common currency of the noise engines.

A :class:`PeriodDiscretization` is a chain of segments covering exactly one
period. Each segment carries its *exact* state propagator ``Phi`` and
noise Gramian ``Q`` (for piecewise-LTI systems) or their second-order
midpoint approximations (for sampled systems), plus an optional
instantaneous jump map applied at the segment end.

The frequency-sharing trick at the heart of the MFT engine lives here:
for the frequency-shifted dynamics ``A(t) − jωI`` the segment propagator
is simply ``e^{-jωh} Phi`` — the expensive real exponentials are computed
once and reused for every analysis frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..typing import ComplexArray, FloatArray
from ..tolerances import SCHEDULE_TILE_RTOL


@dataclass(frozen=True)
class Segment:
    """One integration segment inside a period."""

    t_start: float
    t_end: float
    #: Exact propagator expm(A h) over the segment.
    phi: np.ndarray
    #: Exact accumulated noise covariance over the segment.
    gramian: np.ndarray
    #: Noise input matrix during the segment (for diagnostics).
    b_matrix: np.ndarray
    #: Optional instantaneous map applied at ``t_end`` (``None`` = identity).
    jump: np.ndarray | None
    #: State matrix during the segment — used for the exact affine steps
    #: (φ-functions) of the cross-spectral solver.
    a_matrix: np.ndarray | None = None
    phase_name: str = ""

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class PeriodDiscretization:
    """A chain of segments covering one period ``[0, T]``."""

    segments: list[Segment]
    period: float
    n_states: int
    #: True when propagators/Gramians are exact (piecewise-LTI source).
    exact: bool = True

    def __post_init__(self) -> None:
        if not self.segments:
            raise ReproError("empty discretization")
        t = 0.0
        for seg in self.segments:
            if (abs(seg.t_start - t)
                    > SCHEDULE_TILE_RTOL * max(self.period, 1.0)):
                raise ReproError(
                    f"segment chain has a gap at t={seg.t_start}")
            t = seg.t_end
        if (abs(t - self.period)
                > SCHEDULE_TILE_RTOL * max(self.period, 1.0)):
            raise ReproError(
                f"segments cover [0, {t}], expected period {self.period}")

    @property
    def grid(self) -> FloatArray:
        """All segment boundary times, shape ``(len(segments) + 1,)``."""
        return np.asarray([self.segments[0].t_start]
                          + [s.t_end for s in self.segments])

    def monodromy(self) -> FloatArray:
        """One-period state transition matrix, jumps included."""
        phi = np.eye(self.n_states)
        for seg in self.segments:
            phi = seg.phi @ phi
            if seg.jump is not None:
                phi = seg.jump @ phi
        return phi

    def period_gramian(self) -> tuple[FloatArray, FloatArray]:
        """``(Phi_T, Q_T)``: one-period propagator and noise Gramian.

        ``x(T) = Phi_T x(0) + w`` with ``w ~ N(0, Q_T)`` — the exact
        one-period discrete-time model of the switched SDE.
        """
        phi = np.eye(self.n_states)
        gram = np.zeros((self.n_states, self.n_states))
        for seg in self.segments:
            gram = seg.phi @ gram @ seg.phi.T + seg.gramian
            phi = seg.phi @ phi
            if seg.jump is not None:
                gram = seg.jump @ gram @ seg.jump.T
                phi = seg.jump @ phi
        return phi, 0.5 * (gram + gram.T)

    def shifted_propagators(self, omega: float) -> list[ComplexArray]:
        """Segment propagators of the dynamics ``A(t) − jωI``.

        Returns a list of complex matrices ``e^{-jω h_k} Phi_k`` — the
        frequency-sharing identity that lets the MFT engine sweep
        frequencies at the cost of one complex scalar per segment.
        """
        return [np.exp(-1j * omega * seg.duration) * seg.phi
                for seg in self.segments]
