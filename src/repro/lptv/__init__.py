"""Linear periodically time-varying (LPTV) system containers.

Switched-capacitor noise analysis linearises the circuit around its
periodic large-signal steady state, producing the LPTV stochastic system

    dx = A(t) x dt + B(t) dW,   A(t+T) = A(t),  B(t+T) = B(t).

Two concrete containers are provided:

* :class:`~repro.lptv.system.PiecewiseLTISystem` — the matrices are
  constant inside each clock phase (the switched-capacitor case). All
  propagation is *exact* via Van Loan block exponentials.
* :class:`~repro.lptv.system.SampledLPTVSystem` — the matrices are
  arbitrary periodic functions sampled on a dense grid (translinear and
  oscillator extensions). Propagation is second-order accurate.

Both produce a :class:`~repro.lptv.discretization.PeriodDiscretization`,
the common currency consumed by every noise engine.
"""

from .system import Phase, PiecewiseLTISystem, SampledLPTVSystem
from .discretization import PeriodDiscretization
from .monodromy import (
    floquet_multipliers,
    is_asymptotically_stable,
    monodromy_matrix,
)
from .htf import harmonic_transfer_functions

__all__ = [
    "Phase",
    "PiecewiseLTISystem",
    "SampledLPTVSystem",
    "PeriodDiscretization",
    "monodromy_matrix",
    "floquet_multipliers",
    "is_asymptotically_stable",
    "harmonic_transfer_functions",
]
