"""Periodic steady state of forced linear systems over one period.

The workhorse shared by the MFT noise engine and the harmonic-transfer
baseline: given a period discretization and a periodic forcing, find the
unique periodic solution of

    dv/dt = (A(t) − jω I) v + f(t)

by composing the per-segment affine maps into a one-period affine map
``v(T) = M v(0) + g`` and solving the fixed point ``v(0) = (I − M)^{-1} g``.
This single linear solve replaces the hundreds of transient clock cycles
of the brute-force method — it *is* the steady-state computation the DAC
2003 paper contributes.

Per-segment steps are *exact* for forcing that is linear in time inside
the segment (matrix φ-functions, :mod:`repro.linalg.phi`), and the period
quadrature of the solution uses the derivative-corrected trapezoidal rule
(Euler–Maclaurin), so piecewise-LTI systems with slowly varying forcing
are resolved far beyond the naive O(h²) of plain trapezoids.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError, SingularMatrixError
from ..linalg.checked import checked_solve
from ..linalg.lyapunov import (
    fixed_point_condition,
    solve_linear_fixed_point,
    solve_regularized_fixed_point,
)
from ..linalg.phi import affine_step_integrals
from ..tolerances import FIXED_POINT_RIDGE

logger = logging.getLogger(__name__)


@dataclass
class PeriodicSolution:
    """Periodic steady-state trace of a forced linear system.

    ``post[k]`` is the solution at ``grid[k]`` *after* any jump applied
    there; ``pre[k]`` the value before the jump. For segment boundaries
    without a jump the two coincide. ``grid`` has one more entry than
    there are segments; by periodicity ``post[-1] == post[0]``.
    ``dpost[k]`` / ``dpre[k]`` are the corresponding one-sided time
    derivatives; ``integral`` is the exact per-period integral of the
    trace computed during propagation (see ``periodic_steady_state``).
    """

    grid: np.ndarray
    pre: np.ndarray
    post: np.ndarray
    dpre: np.ndarray
    dpost: np.ndarray
    integral: np.ndarray | None = None
    #: 2-norm condition number of the fixed-point system ``I − M``
    #: (``None`` when the solver did not estimate it).
    condition: float | None = None
    #: Solver that produced ``v(0)`` ("direct" or "lstsq").
    solver: str = "direct"

    def integrate_dot(self):
        """Integral of the trace over one period.

        Uses the exact per-segment integral accumulated during
        propagation when available (the default path — exact for
        piecewise-linear forcing regardless of segment stiffness);
        otherwise falls back to the derivative-corrected trapezoid.
        """
        if self.integral is not None:
            return self.integral
        total = np.zeros(self.pre.shape[1], dtype=self.pre.dtype)
        for k in range(len(self.grid) - 1):
            h = self.grid[k + 1] - self.grid[k]
            total = total + 0.5 * h * (self.post[k] + self.pre[k + 1]) \
                + h * h / 12.0 * (self.dpost[k] - self.dpre[k + 1])
        return total


class _SegmentStepper:
    """Caches the (Φ_ω, I1, I2) triple per unique segment matrix."""

    def __init__(self, disc, omega):
        self.disc = disc
        self.omega = omega
        self._cache = {}

    def integrals(self, seg):
        key = (id(seg.a_matrix), seg.duration)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        if seg.a_matrix is None:
            raise ReproError(
                "segment is missing its A matrix; rebuild the "
                "discretization with a current version of the library")
        n = self.disc.n_states
        a_shifted = seg.a_matrix.astype(complex) \
            - 1j * self.omega * np.eye(n)
        phi_shifted = np.exp(-1j * self.omega * seg.duration) * seg.phi
        triple = affine_step_integrals(a_shifted, seg.duration,
                                       phi=phi_shifted)
        self._cache[key] = triple
        return triple


def forcing_from_samples(disc, samples_post, samples_pre=None):
    """Normalise a forcing specification to per-segment endpoint pairs.

    ``samples_post[k]`` is the forcing at ``grid[k]`` (post-jump side);
    ``samples_pre[k]``, when given, the pre-jump side used as the right
    endpoint of segment ``k-1``. Returns an ``(S, 2, n)`` array.
    """
    samples_post = np.asarray(samples_post)
    n_seg = len(disc.segments)
    if samples_post.shape[0] != n_seg + 1:
        raise ReproError(
            f"forcing has {samples_post.shape[0]} samples for "
            f"{n_seg + 1} grid points")
    if samples_pre is None:
        samples_pre = samples_post
    else:
        samples_pre = np.asarray(samples_pre)
    out = np.empty((n_seg, 2) + samples_post.shape[1:],
                   dtype=np.promote_types(samples_post.dtype, complex))
    for k in range(n_seg):
        out[k, 0] = samples_post[k]
        out[k, 1] = samples_pre[k + 1]
    return out


def periodic_steady_state(disc, omega, segment_forcing, solver="direct",
                          ridge=FIXED_POINT_RIDGE, condition_limit=None):
    """Solve the periodic steady state of ``dv/dt = (A−jω)v + f``.

    Parameters
    ----------
    disc : PeriodDiscretization
    omega : float
        Frequency shift ω [rad/s]; 0 gives the unshifted dynamics.
    segment_forcing : (S, 2, n) array
        ``segment_forcing[k, 0]`` is ``f`` at the start of segment ``k``,
        ``segment_forcing[k, 1]`` at its end (pre-jump side); ``f`` is
        treated as linear in time inside each segment.
    solver : {"direct", "lstsq"}
        ``"direct"`` solves ``(I − M) v0 = g`` exactly; ``"lstsq"`` uses
        the Tikhonov-regularized least squares of
        :func:`~repro.linalg.lyapunov.solve_regularized_fixed_point` —
        the graceful-degradation path for near-singular fixed points.
    ridge : float
        Relative regularization of the ``"lstsq"`` solver.
    condition_limit : float, optional
        When given, a *direct* solve whose ``cond(I − M)`` exceeds the
        limit raises :class:`~repro.errors.SingularMatrixError` instead
        of returning a rounding-dominated answer — this is the
        ill-conditioning trigger of the fallback chain.

    Returns
    -------
    PeriodicSolution
        With ``condition`` and ``solver`` recording the fixed point's
        numerical health.
    """
    n = disc.n_states
    forcing = np.asarray(segment_forcing)
    if forcing.shape != (len(disc.segments), 2, n):
        raise ReproError(
            f"segment forcing must have shape "
            f"({len(disc.segments)}, 2, {n}), got {forcing.shape}")
    stepper = _SegmentStepper(disc, omega)

    # Compose the one-period affine map v(T^+) = m_acc v(0^+) + g_acc.
    m_acc = np.eye(n, dtype=complex)
    g_acc = np.zeros(n, dtype=complex)
    step_g = []
    for k, seg in enumerate(disc.segments):
        phi, i1, i2 = stepper.integrals(seg)
        h = seg.duration
        slope = (forcing[k, 1] - forcing[k, 0]) / h
        g_seg = i1 @ forcing[k, 0] + i2 @ slope
        step_g.append(g_seg)
        m_acc = phi @ m_acc
        g_acc = phi @ g_acc + g_seg
        if seg.jump is not None:
            jump = seg.jump.astype(complex)
            m_acc = jump @ m_acc
            g_acc = jump @ g_acc

    condition = fixed_point_condition(m_acc)
    if solver == "direct":
        if condition_limit is not None and condition > condition_limit:
            logger.info(
                "direct periodic solve rejected at omega=%.6g: "
                "cond(I - M) = %.3g > %.3g", omega, condition,
                condition_limit)
            raise SingularMatrixError(
                f"fixed-point system (I - M) is ill-conditioned: "
                f"cond = {condition:.3g} exceeds limit "
                f"{condition_limit:.3g} at omega = {omega:.6g} rad/s")
        v0 = solve_linear_fixed_point(m_acc, g_acc)
    elif solver == "lstsq":
        v0 = solve_regularized_fixed_point(m_acc, g_acc, ridge=ridge)
    else:
        raise ReproError(f"unknown periodic solver {solver!r}; "
                         "expected 'direct' or 'lstsq'")

    # Propagate once through the period to record the full trace and
    # accumulate the exact period integral of v. Per segment,
    #     A_ω ∫v dt = v(end) − v(start) − ∫f dt,
    # and ∫f dt = h (f0 + f1)/2 exactly for the piecewise-linear
    # forcing, so the integral needs only one linear solve — and is
    # immune to boundary-layer transients inside stiff segments. When
    # A_ω is (near-)singular (‖A_ω‖h small) the derivative-corrected
    # trapezoid is used instead, which is exact there because v is then
    # polynomial to high order.
    grid = disc.grid
    pre = np.zeros((len(grid), n), dtype=complex)
    post = np.zeros((len(grid), n), dtype=complex)
    dpre = np.zeros((len(grid), n), dtype=complex)
    dpost = np.zeros((len(grid), n), dtype=complex)
    integral = np.zeros(n, dtype=complex)
    pre[0] = v0
    post[0] = v0
    v = v0
    eye = np.eye(n)
    for k, seg in enumerate(disc.segments):
        phi, _i1, _i2 = stepper.integrals(seg)
        h = seg.duration
        a_shifted = seg.a_matrix.astype(complex) - 1j * omega * eye
        v_start = v
        dpost[k] = a_shifted @ v + forcing[k, 0]
        v = phi @ v + step_g[k]
        pre[k + 1] = v
        dpre[k + 1] = a_shifted @ v + forcing[k, 1]
        f_int = 0.5 * h * (forcing[k, 0] + forcing[k, 1])
        if np.linalg.norm(a_shifted, 1) * h > 0.5:
            try:
                integral = integral + checked_solve(
                    a_shifted, v - v_start - f_int,
                    context="segment integral resolvent")
            except SingularMatrixError:
                integral = integral + _corrected_trapezoid(
                    h, v_start, v, dpost[k], dpre[k + 1])
        else:
            integral = integral + _corrected_trapezoid(
                h, v_start, v, dpost[k], dpre[k + 1])
        if seg.jump is not None:
            v = seg.jump @ v
        post[k + 1] = v
    dpost[-1] = dpost[0]
    return PeriodicSolution(grid=grid, pre=pre, post=post,
                            dpre=dpre, dpost=dpost, integral=integral,
                            condition=condition, solver=solver)


def _corrected_trapezoid(h, v_left, v_right, dv_left, dv_right):
    return (0.5 * h * (v_left + v_right)
            + h * h / 12.0 * (dv_left - dv_right))
