"""Monodromy matrices and Floquet stability analysis."""

from __future__ import annotations

import logging

import numpy as np

from ..errors import StabilityError
from ..linalg.checked import eigenvalues
from ..tolerances import TINY_FLOOR

logger = logging.getLogger(__name__)


def monodromy_matrix(system, segments_per_phase=1):
    """One-period state transition matrix of a switched system.

    Accepts either a system with a ``discretize`` method or an existing
    :class:`~repro.lptv.discretization.PeriodDiscretization`.
    """
    disc = _as_discretization(system, segments_per_phase)
    return disc.monodromy()


def floquet_multipliers(system, segments_per_phase=1):
    """Eigenvalues of the monodromy matrix, sorted by descending modulus."""
    phi = monodromy_matrix(system, segments_per_phase)
    mults = eigenvalues(phi, context="Floquet multipliers")
    return mults[np.argsort(-np.abs(mults))]


def floquet_exponents(system, segments_per_phase=1):
    """Principal Floquet exponents ``log(mu) / T``.

    The imaginary parts are only defined modulo the clock frequency; the
    principal branch is returned.
    """
    disc = _as_discretization(system, segments_per_phase)
    mults = eigenvalues(disc.monodromy(), context="Floquet exponents")
    # Guard against exactly-zero multipliers (segments with nilpotent maps).
    safe = np.where(mults == 0.0, TINY_FLOOR, mults)
    return np.log(safe.astype(complex)) / disc.period


def is_asymptotically_stable(system, segments_per_phase=1, margin=0.0):
    """True when every Floquet multiplier has modulus < 1 − margin."""
    mults = floquet_multipliers(system, segments_per_phase)
    return bool(np.all(np.abs(mults) < 1.0 - margin))


def stability_margin(system, segments_per_phase=1):
    """``(margin, multipliers)`` with ``margin = 1 − spectral radius``.

    A positive margin means asymptotically stable; a margin near zero
    flags the near-unit Floquet multipliers for which the MFT fixed
    point ``(I − M)^{-1} g`` becomes ill-conditioned. The multipliers
    are sorted by descending modulus.
    """
    mults = floquet_multipliers(system, segments_per_phase)
    radius = float(np.max(np.abs(mults))) if mults.size else 0.0
    return 1.0 - radius, mults


def require_stable(system, segments_per_phase=1):
    """Raise :class:`~repro.errors.StabilityError` unless stable.

    The raised error carries the Floquet ``multipliers`` and
    ``spectral_radius`` so callers can see *which* mode is unstable
    without re-running the eigendecomposition.
    """
    mults = floquet_multipliers(system, segments_per_phase)
    radius = float(np.max(np.abs(mults))) if mults.size else 0.0
    if radius >= 1.0:
        logger.warning("stability check failed: spectral radius %.6g "
                       "(multipliers %s)", radius, mults)
        raise StabilityError(
            f"periodic system is unstable: spectral radius {radius:.6g} "
            f"(largest multipliers {np.round(mults[:3], 6)})",
            multipliers=mults, spectral_radius=radius)
    return radius


def _as_discretization(system, segments_per_phase):
    if hasattr(system, "monodromy"):
        return system
    return system.discretize(segments_per_phase)
