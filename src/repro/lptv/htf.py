"""Harmonic transfer functions of an LPTV system.

An LPTV system maps a complex tone ``e^{jωt}`` on input ``i`` to

    y(t) = sum_k  H_k^{(i)}(jω) e^{j(ω + kΩ)t},     Ω = 2π/T,

where ``H_k`` are the *harmonic transfer functions* (Strom–Signell /
Roychowdhury). They are obtained here by solving the periodic envelope

    dp/dt = (A(t) − jωI) p + b_i(t),   p(t+T) = p(t)

with the shared steady-state machinery and Fourier-analysing ``L p(t)``.

This module exists as the independent frequency-domain comparator: the
paper's claim is that its time-domain engine matches the published
frequency-domain results, so we implement the frequency-domain method too
and compare against it in the benchmarks (noise folding formula in
:mod:`repro.baselines.htf_noise`).
"""

from __future__ import annotations

import logging

import numpy as np

from ..errors import ReproError
from .periodic_solve import periodic_steady_state

logger = logging.getLogger(__name__)


def _segment_forcing_for_column(disc, column):
    """Constant-per-segment forcing from noise column ``column``."""
    n_seg = len(disc.segments)
    n = disc.n_states
    forcing = np.zeros((n_seg, 2, n), dtype=complex)
    for k, seg in enumerate(disc.segments):
        b = seg.b_matrix
        if column < b.shape[1]:
            forcing[k, 0] = b[:, column]
            forcing[k, 1] = b[:, column]
        # Columns beyond this phase's source count inject nothing here.
    return forcing


def periodic_envelope(disc, omega, column):
    """Periodic envelope ``p(t)`` of the response to ``b_col e^{jωt}``."""
    forcing = _segment_forcing_for_column(disc, column)
    return periodic_steady_state(disc, omega, forcing)


def fourier_coefficients(solution, period, harmonics):
    """Fourier coefficients ``P_k = (1/T) ∫ p(t) e^{-jkΩt} dt``.

    Discontinuities at jump instants are integrated exactly by using the
    post-jump value on the left edge of each segment and the pre-jump
    value on the right edge.
    """
    omega0 = 2.0 * np.pi / period
    grid = solution.grid
    coeffs = {}
    for k in harmonics:
        total = np.zeros(solution.pre.shape[1], dtype=complex)
        for s in range(len(grid) - 1):
            h = grid[s + 1] - grid[s]
            left = solution.post[s] * np.exp(-1j * k * omega0 * grid[s])
            right = solution.pre[s + 1] * np.exp(
                -1j * k * omega0 * grid[s + 1])
            total += 0.5 * h * (left + right)
        coeffs[k] = total / period
    return coeffs


def harmonic_transfer_functions(system, omega, n_harmonics=8,
                                segments_per_phase=64, output_row=0):
    """Compute ``H_k^{(i)}(jω)`` for all noise inputs of ``system``.

    Parameters
    ----------
    system : PiecewiseLTISystem or SampledLPTVSystem
    omega : analysis frequency [rad/s]
    n_harmonics : include ``k = -n_harmonics .. +n_harmonics``
    segments_per_phase : discretization density
    output_row : which row of the output matrix to observe

    Returns
    -------
    dict mapping ``(source_index, k)`` to the complex gain ``H_k``.
    """
    disc = system.discretize(segments_per_phase)
    l_row = np.asarray(system.output_matrix)[output_row]
    n_sources = max(seg.b_matrix.shape[1] for seg in disc.segments)
    if n_sources == 0:
        logger.warning("HTF requested for a system with no noise "
                       "inputs")
        raise ReproError("system has no noise inputs")
    harmonics = range(-n_harmonics, n_harmonics + 1)
    result = {}
    for i in range(n_sources):
        envelope = periodic_envelope(disc, omega, i)
        coeffs = fourier_coefficients(envelope, disc.period, harmonics)
        for k, vec in coeffs.items():
            result[(i, k)] = complex(l_row @ vec)
    return result
