"""LPTV system containers.

See :mod:`repro.lptv` for the role these classes play. The containers are
deliberately dumb: they validate their data and know how to discretize one
period; all numerics live in the engines.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError, ScheduleError
from ..typing import ArrayLike, FloatArray
from ..linalg.checked import eigenvalues
from ..linalg.vanloan import vanloan_gramian
from .discretization import PeriodDiscretization, Segment


@dataclass(frozen=True)
class Phase:
    """One clock phase of a piecewise-LTI switched system.

    Parameters
    ----------
    name:
        Human-readable label ("track", "phi1", ...).
    duration:
        Phase length in seconds (> 0).
    a_matrix:
        State matrix ``A`` during the phase, shape ``(n, n)``.
    b_matrix:
        Noise input matrix ``B`` during the phase, shape ``(n, m)``. The
        columns are *scaled* so that each drives a unit-intensity Wiener
        process: ``B`` already contains the square roots of the
        double-sided source PSDs.
    end_jump:
        Optional instantaneous state map applied when the phase ends:
        ``x(t+) = M x(t-)``. Used for ideal-switch charge redistribution;
        ``None`` means identity.
    """

    name: str
    duration: float
    a_matrix: np.ndarray
    b_matrix: np.ndarray
    end_jump: np.ndarray | None = None

    def __post_init__(self) -> None:
        a = np.atleast_2d(np.asarray(self.a_matrix, dtype=float))
        n = a.shape[0]
        if a.shape != (n, n):
            raise ReproError(f"phase {self.name!r}: A must be square, "
                             f"got {a.shape}")
        b = np.asarray(self.b_matrix, dtype=float)
        if b.ndim == 1:
            b = b.reshape(n, -1)
        if b.shape[0] != n:
            raise ReproError(f"phase {self.name!r}: B has {b.shape[0]} rows "
                             f"for {n} states")
        if self.duration <= 0.0:
            raise ScheduleError(
                f"phase {self.name!r}: duration must be positive, "
                f"got {self.duration}")
        jump = self.end_jump
        if jump is not None:
            jump = np.asarray(jump, dtype=float)
            if jump.shape != (n, n):
                raise ReproError(
                    f"phase {self.name!r}: end_jump must be ({n}, {n}), "
                    f"got {jump.shape}")
        object.__setattr__(self, "a_matrix", a)
        object.__setattr__(self, "b_matrix", b)
        object.__setattr__(self, "end_jump", jump)

    @property
    def n_states(self) -> int:
        return int(self.a_matrix.shape[0])


@dataclass
class PiecewiseLTISystem:
    """A switched linear system: a cyclic sequence of LTI phases.

    This is the form every switched-capacitor circuit in
    :mod:`repro.circuits` reduces to. ``output_matrix`` (``L``, shape
    ``(p, n)``) selects the observed combinations of state variables;
    by default the full state is observed.
    """

    phases: list[Phase]
    output_matrix: np.ndarray | None = None
    state_names: list[str] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ScheduleError("a switched system needs at least one phase")
        n = self.phases[0].n_states
        for phase in self.phases:
            if phase.n_states != n:
                raise ReproError(
                    f"phase {phase.name!r} has {phase.n_states} states, "
                    f"expected {n}")
        if self.output_matrix is None:
            self.output_matrix = np.eye(n)
        else:
            self.output_matrix = np.atleast_2d(
                np.asarray(self.output_matrix, dtype=float))
            if self.output_matrix.shape[1] != n:
                raise ReproError(
                    f"output matrix has {self.output_matrix.shape[1]} "
                    f"columns for {n} states")
        if not self.state_names:
            self.state_names = [f"x{k}" for k in range(n)]
        if not self.output_names:
            self.output_names = [f"y{k}" for k in
                                 range(self.output_matrix.shape[0])]

    @property
    def n_states(self) -> int:
        return self.phases[0].n_states

    @property
    def n_outputs(self) -> int:
        matrix = self.output_matrix
        if matrix is None:  # pragma: no cover - __post_init__ fills it in
            raise ReproError("output matrix missing")
        return int(matrix.shape[0])

    @property
    def period(self) -> float:
        return float(sum(p.duration for p in self.phases))

    @property
    def boundaries(self) -> FloatArray:
        """Phase boundary times ``[0, d_0, d_0+d_1, ..., T]``, shape (P+1,)."""
        edges = [0.0]
        for phase in self.phases:
            edges.append(edges[-1] + phase.duration)
        return np.asarray(edges)

    def phase_at(self, t: float) -> tuple[int, Phase]:
        """Return ``(index, phase)`` active at time ``t`` (mod period)."""
        tau = float(t) % self.period
        edges = self.boundaries
        idx = int(np.searchsorted(edges, tau, side="right") - 1)
        idx = min(idx, len(self.phases) - 1)
        return idx, self.phases[idx]

    def a_of_t(self, t: float) -> FloatArray:
        return self.phase_at(t)[1].a_matrix

    def b_of_t(self, t: float) -> FloatArray:
        return self.phase_at(t)[1].b_matrix

    def discretize(self, segments_per_phase: int | Sequence[int] = 32,
                   boundary_layer: bool = False) -> PeriodDiscretization:
        """Exact one-period discretization via Van Loan Gramians.

        ``segments_per_phase`` controls only the *grid density* used later
        for the cross-spectral quadrature; the per-segment propagators and
        Gramians are exact regardless.

        ``boundary_layer`` optionally grades the grid at the start of
        each phase to resolve post-switching transients (nanosecond
        switch time constants inside 100 µs phases). The ablation
        benchmark (EXP-T2) shows it is *not* needed: grid-point values
        are exact regardless, only interpolated quantities see the fast
        transient, and reallocating half the budget into the first few
        nanoseconds starves the smooth region — the uniform default
        converges faster. The option is kept for experimentation.
        """
        if isinstance(segments_per_phase, (int, np.integer)):
            counts = [int(segments_per_phase)] * len(self.phases)
        else:
            counts = [int(c) for c in segments_per_phase]
            if len(counts) != len(self.phases):
                raise ScheduleError(
                    f"{len(counts)} segment counts for "
                    f"{len(self.phases)} phases")
        segments = []
        t = 0.0
        for phase, count in zip(self.phases, counts):
            if count < 1:
                raise ScheduleError("segments_per_phase must be >= 1")
            edges = _phase_edges(phase, count, boundary_layer)
            bbt = phase.b_matrix @ phase.b_matrix.T
            cache: dict[float, tuple[FloatArray, FloatArray]] = {}
            for k in range(len(edges) - 1):
                h = edges[k + 1] - edges[k]
                key = round(h / phase.duration, 15)
                if key not in cache:
                    cache[key] = vanloan_gramian(phase.a_matrix, bbt, h)
                phi, gram = cache[key]
                jump = phase.end_jump if k == len(edges) - 2 else None
                segments.append(Segment(
                    t_start=t + edges[k], t_end=t + edges[k + 1],
                    phi=phi, gramian=gram, b_matrix=phase.b_matrix,
                    jump=jump, a_matrix=phase.a_matrix,
                    phase_name=phase.name))
            t += phase.duration
        return PeriodDiscretization(
            segments=segments, period=self.period,
            n_states=self.n_states, exact=True)


@dataclass
class SampledLPTVSystem:
    """An LPTV system given by periodic matrix-valued callables.

    Used by the translinear and oscillator extensions, where ``A(t)`` comes
    from linearising around a numerically computed large-signal steady
    state. Discretization uses midpoint matrix exponentials, which is
    second-order accurate — consistent with the trapezoidal rule the paper
    uses.
    """

    a_of_t: Callable[[float], ArrayLike]
    b_of_t: Callable[[float], ArrayLike]
    period: float
    n_states: int
    output_matrix: np.ndarray | None = None
    state_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ScheduleError(f"period must be positive: {self.period}")
        if self.output_matrix is None:
            self.output_matrix = np.eye(self.n_states)
        else:
            self.output_matrix = np.atleast_2d(
                np.asarray(self.output_matrix, dtype=float))
        if not self.state_names:
            self.state_names = [f"x{k}" for k in range(self.n_states)]

    @property
    def n_outputs(self) -> int:
        matrix = self.output_matrix
        if matrix is None:  # pragma: no cover - __post_init__ fills it in
            raise ReproError("output matrix missing")
        return int(matrix.shape[0])

    def discretize(self, n_segments: int = 256) -> PeriodDiscretization:
        """Discretize one period on a uniform grid of ``n_segments``."""
        if n_segments < 2:
            raise ScheduleError("need at least 2 segments per period")
        grid = np.linspace(0.0, self.period, n_segments + 1)
        segments = []
        for k in range(n_segments):
            t0, t1 = grid[k], grid[k + 1]
            h = t1 - t0
            t_mid = 0.5 * (t0 + t1)
            a_mid = np.atleast_2d(np.asarray(self.a_of_t(t_mid), dtype=float))
            b_mid = np.asarray(self.b_of_t(t_mid), dtype=float)
            if b_mid.ndim == 1:
                b_mid = b_mid.reshape(self.n_states, -1)
            phi, gram = vanloan_gramian(a_mid, b_mid @ b_mid.T, h)
            segments.append(Segment(
                t_start=t0, t_end=t1, phi=phi, gramian=gram,
                b_matrix=b_mid, jump=None, a_matrix=a_mid,
                phase_name=f"seg{k}"))
        return PeriodDiscretization(
            segments=segments, period=self.period,
            n_states=self.n_states, exact=False)


def _phase_edges(phase: Phase, count: int,
                 boundary_layer: bool) -> FloatArray:
    """Segment edge offsets within one phase, graded when needed.

    The fastest time constant is taken from the spectral abscissa of the
    phase's ``A``. When it is much shorter than the phase, a logarithmic
    boundary layer (half the budget, at least 6 segments) covers the
    first ~12 fast time constants and the remainder is uniform; the
    total segment count always equals ``count``.
    """
    duration = phase.duration
    if not boundary_layer or count < 8:
        return np.linspace(0.0, duration, count + 1)
    eigs = eigenvalues(phase.a_matrix, context="phase-edge grading")
    rate = float(np.max(-eigs.real)) if eigs.size else 0.0
    if rate <= 0.0:
        return np.linspace(0.0, duration, count + 1)
    tau = 1.0 / rate
    layer_end = 12.0 * tau
    if layer_end > 0.2 * duration:
        return np.linspace(0.0, duration, count + 1)
    n_layer = max(6, count // 2)
    n_rest = count - n_layer
    # Logarithmic from tau/8 to the layer end (first edge at tau/8 keeps
    # the very first segment shorter than the transient itself).
    log_edges = np.geomspace(tau / 8.0, layer_end, n_layer)
    rest = np.linspace(layer_end, duration, n_rest + 1)[1:]
    return np.concatenate([[0.0], log_edges, rest])


def lti_phase_system(a_matrix: ArrayLike, b_matrix: ArrayLike,
                     period: float = 1.0,
                     output_matrix: ArrayLike | None = None,
                     ) -> PiecewiseLTISystem:
    """Wrap a plain LTI system as a one-phase switched system.

    Convenience used by the LTI baseline and by tests: an LTI circuit is
    the degenerate case of an LPTV circuit, and every periodic-steady-state
    engine must reduce to the stationary answer on it.
    """
    phase = Phase(name="lti", duration=float(period),
                  a_matrix=np.asarray(a_matrix, dtype=float),
                  b_matrix=np.asarray(b_matrix, dtype=float))
    selector = (None if output_matrix is None
                else np.atleast_2d(np.asarray(output_matrix, dtype=float)))
    return PiecewiseLTISystem(phases=[phase], output_matrix=selector)
