"""Spectrum comparison container used by benchmarks and EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..tolerances import PSD_FLOOR


@dataclass
class SpectrumComparison:
    """Two spectra on a common grid plus deviation statistics."""

    frequencies: np.ndarray
    reference: np.ndarray
    candidate: np.ndarray
    reference_name: str = "reference"
    candidate_name: str = "candidate"

    def __post_init__(self):
        self.frequencies = np.asarray(self.frequencies, dtype=float)
        self.reference = np.asarray(self.reference, dtype=float)
        self.candidate = np.asarray(self.candidate, dtype=float)
        if not (self.frequencies.shape == self.reference.shape
                == self.candidate.shape):
            raise ReproError("comparison arrays must share one shape")

    def deviation_db(self):
        """Pointwise ``10 log10(candidate/reference)`` (inf-safe)."""
        ref = np.maximum(self.reference, PSD_FLOOR)
        cand = np.maximum(self.candidate, PSD_FLOOR)
        return 10.0 * np.log10(cand / ref)

    @property
    def max_abs_db(self):
        return float(np.max(np.abs(self.deviation_db())))

    @property
    def rms_db(self):
        dev = self.deviation_db()
        return float(np.sqrt(np.mean(dev ** 2)))

    def within(self, tol_db):
        """True when every point agrees within ``tol_db``."""
        return self.max_abs_db <= tol_db

    def summary(self):
        return (f"{self.candidate_name} vs {self.reference_name}: "
                f"max |Δ| = {self.max_abs_db:.3f} dB, "
                f"rms = {self.rms_db:.3f} dB over "
                f"{self.frequencies.size} frequencies")
