"""High-level analysis façade.

:class:`~repro.analysis.api.NoiseAnalysis` wraps the full pipeline —
netlist/model in, spectra and reports out — for users who don't want to
assemble the engines by hand.
"""

from .api import NoiseAnalysis, compare_spectra
from .spectrum import SpectrumComparison

__all__ = ["NoiseAnalysis", "compare_spectra", "SpectrumComparison"]
