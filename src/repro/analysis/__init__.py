"""High-level analysis façade.

:class:`~repro.analysis.api.NoiseAnalysis` wraps the full pipeline —
netlist/model in, spectra and reports out — for users who don't want to
assemble the engines by hand.
"""

from ..diagnostics.budget import SweepBudget
from ..mft.corners import CornerSweepResult
from ..noise.result import PsdResult
from ..obs import Recorder
from .api import NoiseAnalysis, compare_spectra
from .spectrum import SpectrumComparison

__all__ = [
    "CornerSweepResult", "NoiseAnalysis", "PsdResult", "Recorder",
    "SpectrumComparison", "SweepBudget", "compare_spectra",
]
