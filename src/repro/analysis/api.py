"""The one-stop :class:`NoiseAnalysis` façade.

Typical use (this is the quickstart example)::

    from repro.circuits import sc_lowpass_system
    from repro.analysis import NoiseAnalysis

    model = sc_lowpass_system()
    analysis = NoiseAnalysis(model)
    spectrum = analysis.psd(frequencies)          # fast MFT engine
    trace = analysis.convergence_trace(7.5e3)     # paper Fig. 1
    report = analysis.contribution_report(7.5e3)  # per-state breakdown
"""

from __future__ import annotations

import logging

import numpy as np

from ..diagnostics.preflight import preflight_report
from ..errors import ReproError
from ..io.tables import format_table
from ..mft.engine import MftNoiseAnalyzer
from ..noise.brute_force import brute_force_psd
from ..noise.snr import integrated_noise_power, snr_db
from ..tolerances import DIRECT_SOLVE_COND_LIMIT, FLOQUET_MARGIN
from .spectrum import SpectrumComparison

logger = logging.getLogger(__name__)


def _system_of(model_or_system):
    if hasattr(model_or_system, "system"):
        return model_or_system.system, model_or_system
    if hasattr(model_or_system, "discretize"):
        return model_or_system, None
    raise ReproError(
        "expected a SwitchedCircuitModel or an LPTV system, got "
        f"{type(model_or_system).__name__}")


class NoiseAnalysis:
    """High-level noise analysis of a switched circuit.

    Accepts either a :class:`~repro.circuit.statespace.SwitchedCircuitModel`
    (netlist-based) or a bare LPTV system. All options after the model
    are strictly keyword-only (see DESIGN.md §9). Pass a
    :class:`~repro.obs.Recorder` as ``recorder=`` to trace every solve —
    the default is a shared no-op recorder costing one attribute check.
    """

    def __init__(self, model_or_system, *, segments_per_phase=64,
                 output_row=0, preflight=True, fallback=True,
                 budget=None, cache=True, context=None,
                 recorder=None):
        self.system, self.model = _system_of(model_or_system)
        self.segments_per_phase = segments_per_phase
        self.output_row = output_row
        self.engine = MftNoiseAnalyzer(
            self.system, segments_per_phase=segments_per_phase,
            output_row=output_row, preflight=preflight,
            fallback=fallback, budget=budget, cache=cache,
            context=context, recorder=recorder)
        if self.engine.preflight.has_warnings:
            logger.warning("preflight: %s",
                           self.engine.preflight.summary())

    # -- diagnostics ---------------------------------------------------------

    @property
    def preflight(self):
        """Preflight findings gathered at construction."""
        return self.engine.preflight

    @property
    def recorder(self):
        """The attached :class:`~repro.obs.Recorder` (no-op by default)."""
        return self.engine.recorder

    def trace_report(self, title="noise analysis trace"):
        """Rendered span tree of everything recorded so far."""
        return self.engine.trace_report(title=title)

    def trace_export(self):
        """JSON-ready dict of recorded spans, counters, histograms."""
        return self.engine.trace_export()

    def check(self, stability_margin=FLOQUET_MARGIN,
              condition_limit=DIRECT_SOLVE_COND_LIMIT):
        """Re-run preflight validation; returns the DiagnosticsReport.

        Unlike the construction-time preflight this never raises, so it
        can be used to inspect a system known to be marginal.
        """
        return preflight_report(self.engine._disc,
                                stability_margin=stability_margin,
                                condition_limit=condition_limit)

    # -- spectra -------------------------------------------------------------

    def psd(self, frequencies, on_failure="record", budget=None,
            solver=None, attribute_sources=False, **solver_options):
        """Averaged double-sided PSD of the selected output, in V²/Hz.

        ``solver`` picks the engine by name — ``"mft"`` (default),
        ``"spectral-batch"``, ``"brute-force"``, or ``"monte-carlo"`` —
        with identical result conventions; unknown names raise
        :class:`~repro.errors.ReproError` listing the choices.
        ``solver_options`` are forwarded to the delegate engines
        (e.g. ``tol_db=`` for brute force, ``n_trajectories=`` for
        Monte-Carlo; ``frequencies`` must be ``None`` for Monte-Carlo,
        which defines its own Welch grid).

        ``attribute_sources=True`` additionally decomposes the PSD per
        noise source (one extra linear solve per source against the same
        cached discretization) and attaches a
        :class:`~repro.metrics.ContributionBudget` at ``result.budget``
        whose rows sum to the unclipped total at every finite frequency;
        ``result.budget.to_table()`` renders the ranked breakdown.  When the
        analysis was built from a netlist-backed
        :class:`~repro.circuit.statespace.SwitchedCircuitModel`, the
        model's ``noise_labels`` name the rows; pass a list of labels to
        override.

        Per-frequency failures yield NaN plus records in
        ``result.info["failures"]`` (``on_failure="record"``, default)
        instead of aborting the sweep; the fallback chain and preflight
        findings are in ``result.info["diagnostics"]``.
        """
        return self.engine.psd(
            frequencies, on_failure=on_failure, budget=budget,
            solver=solver,
            attribute_sources=self._attribution_labels(attribute_sources),
            **solver_options)

    def psd_sweep(self, frequencies, parallel=None, max_workers=None,
                  chunk_size=None, budget=None, on_failure="record",
                  solver=None, attribute_sources=False, retry=None,
                  faults=None, checkpoint=None, pool=None,
                  **solver_options):
        """Same as :meth:`psd` but through a parallel sweep executor.

        Values are the same double-sided PSD samples in V²/Hz, merged
        back in frequency order.

        ``parallel="thread"`` or ``"process"`` runs independent
        frequency chunks concurrently (``max_workers`` workers) with the
        same values, failure semantics, and diagnostics as :meth:`psd`.
        ``solver="spectral-batch"`` evaluates each chunk as one ω-block
        through the frequency-batched spectral kernel
        (:mod:`repro.mft.spectral`); the delegate solvers
        (``"brute-force"``, ``"monte-carlo"``) accept only
        ``parallel=None`` or ``"serial"``.

        ``attribute_sources`` works exactly as in :meth:`psd`
        (DESIGN.md §11): every chunk carries the per-source rows along
        with the total through the same retry/budget/fault machinery, so
        a failed frequency is NaN in the total *and* every budget row,
        and the merged :class:`~repro.metrics.ContributionBudget` is
        bit-identical between serial and process execution.

        Resilience knobs (DESIGN.md §10): ``retry`` sets the chunk
        retry/backoff/timeout policy
        (:class:`~repro.resilience.retry.RetryPolicy`), ``faults`` arms
        a deterministic fault-injection plan
        (:class:`~repro.resilience.faults.FaultPlan`), ``checkpoint``
        names a directory to persist completed chunks for bit-identical
        resume after an interruption.  ``pool`` injects a shared
        :class:`repro.service.WorkerPool` so successive sweeps reuse
        warm workers (requires a concurrent ``parallel=`` backend).
        """
        return self.engine.psd_sweep(
            frequencies, parallel=parallel, max_workers=max_workers,
            chunk_size=chunk_size, budget=budget, on_failure=on_failure,
            solver=solver,
            attribute_sources=self._attribution_labels(attribute_sources),
            retry=retry, faults=faults, checkpoint=checkpoint, pool=pool,
            **solver_options)

    def psd_corners(self, grid, frequencies, parallel=None,
                    max_workers=None, chunk_size=None, budget=None,
                    on_failure="record", attribute_sources=False,
                    derive_intensity=True, retry=None, faults=None,
                    checkpoint=None):
        """PSD of every corner of a parameter grid in one batched sweep.

        ``grid`` is a :class:`~repro.circuits.corners.ParameterGrid`
        (explicit corners, a dynamics × intensity cross, or a seeded
        mismatch cloud); the result is a
        :class:`~repro.mft.corners.CornerSweepResult` whose
        ``values[m, k]`` is corner ``m``'s double-sided PSD at
        ``frequencies[k]`` — the same V²/Hz samples M independent
        :meth:`psd_sweep` calls would produce, computed through the
        parameter-batched spectral kernel (DESIGN.md §12): corners
        sharing dynamics share propagators, covariance bases, and
        per-frequency kernel work, and uniform intensity corners share
        a single kernel row.

        ``attribute_sources`` attaches one
        :class:`~repro.metrics.ContributionBudget` per corner at
        ``result.budgets[name]``.  ``derive_intensity=False`` rebuilds
        every intensity corner from its rescaled system instead of
        deriving it from the dynamics root (slower, but numerically
        identical to a by-hand rebuild).  The executor knobs
        (``parallel``/``budget``/``retry``/``faults``/``checkpoint``…)
        act on the flattened ``(frequency, corner)`` axis exactly as in
        :meth:`psd_sweep`.
        """
        from ..mft.corners import corner_psd_sweep

        target = self.model if self.model is not None else self.system
        return corner_psd_sweep(
            target, grid, frequencies, output_row=self.output_row,
            segments_per_phase=self.segments_per_phase,
            parallel=parallel, max_workers=max_workers,
            chunk_size=chunk_size, budget=budget, on_failure=on_failure,
            attribute_sources=self._attribution_labels(attribute_sources),
            derive_intensity=derive_intensity, retry=retry,
            faults=faults, checkpoint=checkpoint,
            recorder=self.engine.recorder)

    def _attribution_labels(self, attribute_sources):
        """Substitute the model's noise labels for a bare ``True``.

        A netlist-backed model knows its per-source names
        (``noise_labels``); a bare LPTV system does not, so ``True``
        passes through and the engine falls back to ``source[i]``.
        """
        if attribute_sources is True and self.model is not None:
            labels = getattr(self.model, "noise_labels", None)
            if labels:
                return list(labels)
        return attribute_sources

    def psd_brute_force(self, frequencies, tol_db=0.1, window_periods=5,
                        **kwargs):
        """Same quantity — double-sided V²/Hz — via the baseline
        transient engine (slow).

        Shares the engine's cached discretization (propagators, Van Loan
        Gramians) through its :class:`~repro.mft.context.SweepContext`
        when one is active.
        """
        if self.engine.context is not None:
            kwargs.setdefault("context", self.engine.context)
        kwargs.setdefault("recorder", self.engine.recorder)
        return brute_force_psd(self.system, frequencies,
                               output_row=self.output_row,
                               segments_per_phase=self.segments_per_phase,
                               tol_db=tol_db,
                               window_periods=window_periods, **kwargs)

    def convergence_trace(self, frequency, tol_db=0.1, window_periods=5,
                          **kwargs):
        """PSD-vs-time trace at one frequency (paper Fig. 1)."""
        result = self.psd_brute_force([frequency], tol_db=tol_db,
                                      window_periods=window_periods,
                                      **kwargs)
        return result.info["details"][0].trace

    def instantaneous_psd(self, frequency):
        """``S(t, f)`` over one period of the steady state.

        Double-sided instantaneous PSD samples in V²/Hz.
        """
        return self.engine.instantaneous_psd(frequency)

    # -- scalar figures of merit ----------------------------------------------

    def output_variance(self):
        """Period-averaged output noise variance."""
        return self.engine.average_output_variance()

    def snr(self, signal_power, f_low=None, f_high=None,
            frequencies=None):
        """SNR from band-integrated PSD (or total variance).

        With ``frequencies`` given, the noise power is the integral of
        the double-sided PSD over the band (×2); otherwise the average
        output variance is used — the draft's Table I convention.
        """
        if frequencies is None:
            return snr_db(signal_power, self.output_variance())
        spectrum = self.psd(frequencies)
        return snr_db(signal_power,
                      integrated_noise_power(spectrum, f_low, f_high))

    # -- reports ---------------------------------------------------------------

    def contribution_report(self, frequency):
        """Per-state cross-spectral contribution table at one frequency.

        The rows sum (weighted by the output row) to the output PSD —
        the "relative contributions of various portions of the circuit"
        the paper advertises.
        """
        contributions = self.engine.cross_spectral_contributions(frequency)
        l_row = np.asarray(self.system.output_matrix)[self.output_row]
        rows = []
        total = float(l_row @ contributions)
        for name, value, weight in zip(self.system.state_names,
                                       contributions, l_row):
            share = (weight * value / total) if total != 0.0 else 0.0
            rows.append([name, value, weight, share])
        table = format_table(
            ["state", "cross-PSD [V^2/Hz]", "output weight", "share"],
            rows, title=f"Cross-spectral contributions at "
                        f"{frequency:.6g} Hz (total {total:.4g})")
        return table


def compare_spectra(frequencies, reference, candidate,
                    reference_name="reference",
                    candidate_name="candidate"):
    """Build a :class:`SpectrumComparison` from arrays or PsdResults."""
    ref = getattr(reference, "psd", reference)
    cand = getattr(candidate, "psd", candidate)
    return SpectrumComparison(
        frequencies=np.asarray(frequencies, dtype=float),
        reference=np.asarray(ref, dtype=float),
        candidate=np.asarray(cand, dtype=float),
        reference_name=reference_name, candidate_name=candidate_name)
