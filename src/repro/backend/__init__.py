"""Pluggable array-module backend for the batched spectral kernels.

The parameter-batched spectral pipeline performs all of its heavy array
math — ``einsum`` contractions, batched LU solves, eigendecompositions —
through the module object returned by :func:`array_module` instead of a
hard ``import numpy`` at each call site.  Today the only registered
backend is numpy, and it is selected by default, so every existing
solver path is *bit-identical* before and after this shim: the functions
resolved through ``xp`` are the very same numpy functions that were
called directly before.

The indirection exists so an accelerator module (cupy, jax.numpy) can be
slotted in later by registering it here, without touching the kernel
math in :mod:`repro.mft.spectral`.  The contract a backend must satisfy
is the numpy API surface actually used by the kernels:

- ``xp.einsum``, ``xp.moveaxis``, ``xp.eye``, ``xp.zeros``, ``xp.ones``,
  ``xp.abs``, ``xp.exp``, ``xp.real``, ``xp.conj``, ``xp.where``,
  ``xp.isfinite``,
- ``xp.linalg.solve``, ``xp.linalg.eig``, ``xp.linalg.cond``,
- numpy-compatible broadcasting and complex dtypes.

Backends are registered process-wide and selected by name; selection is
explicit (:func:`use_backend`) rather than environment-driven so a sweep
cannot silently change numerics between runs.
"""

from __future__ import annotations

import threading
import types
from typing import Iterator

import numpy

__all__ = [
    "array_module",
    "available_backends",
    "backend_name",
    "register_backend",
    "use_backend",
]

_LOCK = threading.Lock()
_BACKENDS: dict[str, types.ModuleType] = {"numpy": numpy}
_ACTIVE = "numpy"


def register_backend(name: str, module: types.ModuleType) -> None:
    """Register ``module`` as a selectable array backend.

    ``module`` must expose the numpy API subset documented in the module
    docstring.  Registering an existing name replaces it, which is how a
    test can swap in an instrumented proxy.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    for attr in ("einsum", "eye", "moveaxis", "linalg"):
        if not hasattr(module, attr):
            raise TypeError(
                f"backend {name!r} lacks required attribute {attr!r}"
            )
    with _LOCK:
        _BACKENDS[name] = module


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, registration-ordered."""
    with _LOCK:
        return tuple(_BACKENDS)


def backend_name() -> str:
    """Name of the currently active backend (``"numpy"`` by default)."""
    with _LOCK:
        return _ACTIVE


def array_module() -> types.ModuleType:
    """Return the active array module (``xp``) for kernel math."""
    with _LOCK:
        return _BACKENDS[_ACTIVE]


class _BackendSelection:
    """Context-manager handle returned by :func:`use_backend`."""

    def __init__(self, previous: str) -> None:
        self._previous = previous

    def __enter__(self) -> types.ModuleType:
        return array_module()

    def __exit__(self, *exc: object) -> None:
        global _ACTIVE
        with _LOCK:
            _ACTIVE = self._previous


def use_backend(name: str) -> _BackendSelection:
    """Select backend ``name``; usable as a statement or context manager.

    As a plain call it switches the process-wide backend.  As a context
    manager it restores the previously active backend on exit, which is
    the form tests use::

        with use_backend("numpy") as xp:
            ...
    """
    global _ACTIVE
    with _LOCK:
        if name not in _BACKENDS:
            known = ", ".join(sorted(_BACKENDS))
            raise KeyError(f"unknown backend {name!r}; registered: {known}")
        previous = _ACTIVE
        _ACTIVE = name
    return _BackendSelection(previous)


def _iter_module_names() -> Iterator[str]:
    """Internal helper for diagnostics dumps (kept API-stable)."""
    yield from available_backends()
