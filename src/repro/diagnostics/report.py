"""Structured diagnostics shared by every noise engine.

A :class:`DiagnosticsReport` is an ordered list of severity-tagged
:class:`Finding` records. Engines build one during preflight validation
and keep appending to it while they run (fallback attempts, clipping,
per-frequency failures), then attach it to ``PsdResult.info["diagnostics"]``
— and to the exception via :meth:`repro.errors.ReproError.attach_diagnostics`
when they fail — so numerical health is inspectable without re-running.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Ordered severity of a finding; comparisons follow numeric order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self):
        return self.name.lower()


@dataclass
class Finding:
    """One diagnostic observation.

    ``code`` is a stable machine-readable identifier (kebab-case, e.g.
    ``"floquet-margin"``); ``message`` the human-readable explanation;
    ``data`` free-form numeric context (condition numbers, multipliers,
    frequencies) for programmatic inspection.
    """

    code: str
    severity: Severity
    message: str
    data: dict = field(default_factory=dict)

    def __str__(self):
        return f"[{self.severity}] {self.code}: {self.message}"

    def to_dict(self):
        """JSON-friendly form (checkpoint files, trace exports)."""
        return {"code": self.code, "severity": str(self.severity),
                "message": self.message, "data": dict(self.data)}

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        return cls(code=str(data["code"]),
                   severity=Severity[str(data["severity"]).upper()],
                   message=str(data["message"]),
                   data=dict(data.get("data", {})))


@dataclass
class FrequencyFailure:
    """Record of one analysis frequency that produced no PSD value.

    The engines replace the failed sample with NaN and keep sweeping;
    this record (stored in ``PsdResult.info["failures"]`` and mirrored as
    an ERROR finding) says which frequency, at which stage, and why.
    """

    frequency: float
    index: int
    stage: str
    error: str
    message: str

    def __str__(self):
        return (f"f={self.frequency:.6g} Hz [{self.stage}] "
                f"{self.error}: {self.message}")

    def to_dict(self):
        """JSON-friendly form (checkpoint files, trace exports)."""
        return {"frequency": self.frequency, "index": self.index,
                "stage": self.stage, "error": self.error,
                "message": self.message}

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        return cls(frequency=float(data["frequency"]),
                   index=int(data["index"]), stage=str(data["stage"]),
                   error=str(data["error"]),
                   message=str(data["message"]))


class DiagnosticsReport:
    """Ordered, severity-tagged findings from one analysis run."""

    def __init__(self, findings=None, context=""):
        self.findings = list(findings) if findings else []
        #: Free-form label of what was analysed ("mft preflight", ...).
        self.context = context
        #: Span summary of the run that produced this report (a list of
        #: per-stage aggregate rows from :func:`repro.obs.span_summary`)
        #: when an enabled recorder was attached; empty otherwise. Lets
        #: a failure report carry its own timeline.
        self.timeline = []

    # -- building -----------------------------------------------------------

    def add(self, code, severity, message, **data):
        """Append a finding and return it."""
        finding = Finding(code=code, severity=Severity(severity),
                          message=message, data=data)
        self.findings.append(finding)
        return finding

    def info(self, code, message, **data):
        return self.add(code, Severity.INFO, message, **data)

    def warning(self, code, message, **data):
        return self.add(code, Severity.WARNING, message, **data)

    def error(self, code, message, **data):
        return self.add(code, Severity.ERROR, message, **data)

    def merge(self, other):
        """Append every finding of ``other`` (a report or iterable)."""
        self.findings.extend(getattr(other, "findings", other))
        return self

    # -- querying -----------------------------------------------------------

    def __len__(self):
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def __bool__(self):
        # A report is truthy even when empty: "ran, found nothing".
        return True

    def by_code(self, code):
        return [f for f in self.findings if f.code == code]

    def at_least(self, severity):
        severity = Severity(severity)
        return [f for f in self.findings if f.severity >= severity]

    @property
    def worst_severity(self):
        """Highest severity present, or ``None`` for an empty report."""
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    @property
    def has_errors(self):
        return any(f.severity >= Severity.ERROR for f in self.findings)

    @property
    def has_warnings(self):
        return any(f.severity >= Severity.WARNING for f in self.findings)

    # -- presentation -------------------------------------------------------

    def to_dict(self):
        """JSON-friendly representation."""
        return {
            "context": self.context,
            "findings": [
                {"code": f.code, "severity": str(f.severity),
                 "message": f.message, "data": dict(f.data)}
                for f in self.findings
            ],
            "timeline": [dict(row) for row in self.timeline],
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        report = cls(
            findings=[Finding.from_dict(f)
                      for f in data.get("findings", [])],
            context=str(data.get("context", "")))
        report.timeline = [dict(row) for row in data.get("timeline", [])]
        return report

    def summary(self):
        counts = {}
        for f in self.findings:
            counts[str(f.severity)] = counts.get(str(f.severity), 0) + 1
        body = ", ".join(f"{n} {sev}" for sev, n in sorted(counts.items()))
        label = self.context or "diagnostics"
        return f"{label}: {body or 'clean'}"

    def __str__(self):
        lines = [self.summary()]
        lines.extend(f"  {f}" for f in self.findings)
        return "\n".join(lines)

    def __repr__(self):
        return (f"DiagnosticsReport({len(self.findings)} findings, "
                f"worst={self.worst_severity})")
