"""Graceful-degradation solve chain for per-frequency PSD computations.

The MFT fixed point is one linear solve — fast, but fragile when a
Floquet multiplier of the frequency-shifted system approaches 1. Instead
of aborting the sweep, the engines run a bounded chain of increasingly
conservative strategies:

1. the direct periodic solve (rejected when ``cond(I − M)`` exceeds the
   policy threshold),
2. the same solve on a refined discretization (``segments_per_phase``
   doubled, capped),
3. a Tikhonov-regularized least-squares fixed point,
4. the brute-force transient engine for that one frequency.

Every attempt is recorded — strategy, trigger, wall-clock cost, outcome —
both as an :class:`AttemptRecord` and as a finding in the sweep's
:class:`~repro.diagnostics.report.DiagnosticsReport`, so a "succeeded via
fallback" result is distinguishable from a clean one.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

from ..errors import ReproError
from ..tolerances import DIRECT_SOLVE_COND_LIMIT, FIXED_POINT_RIDGE
from .report import Severity

logger = logging.getLogger(__name__)


@dataclass
class FallbackPolicy:
    """Tuning knobs of the graceful-degradation chain.

    ``condition_limit`` is the ``cond(I − M)`` above which a direct solve
    is treated as failed even though numpy returned numbers;
    ``max_refinements`` bounds the grid-doubling retries and
    ``segments_cap`` the densest grid they may build;
    ``regularization`` is the relative Tikhonov ridge of the
    least-squares fallback; the ``enable_*`` switches turn individual
    stages off (for testing and for cost control);
    ``brute_force_kwargs`` tunes the terminal transient fallback.
    """

    condition_limit: float = DIRECT_SOLVE_COND_LIMIT
    max_refinements: int = 2
    segments_cap: int = 1024
    regularization: float = FIXED_POINT_RIDGE
    enable_refinement: bool = True
    enable_regularized: bool = True
    enable_brute_force: bool = True
    brute_force_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.condition_limit <= 0.0:
            raise ReproError(
                f"condition_limit must be positive, got "
                f"{self.condition_limit}")
        if self.max_refinements < 0:
            raise ReproError(
                f"max_refinements must be >= 0, got {self.max_refinements}")


@dataclass
class AttemptRecord:
    """One strategy attempt of the fallback chain at one frequency."""

    strategy: str
    frequency: float
    trigger: str
    success: bool
    cost_seconds: float
    error: str = ""
    data: dict = field(default_factory=dict)

    def __str__(self):
        outcome = "ok" if self.success else f"failed ({self.error})"
        return (f"{self.strategy} @ {self.frequency:.6g} Hz "
                f"[{self.trigger}]: {outcome} "
                f"in {self.cost_seconds:.3g} s")

    def to_dict(self):
        """JSON-friendly form (checkpoint files, trace exports)."""
        return {"strategy": self.strategy, "frequency": self.frequency,
                "trigger": self.trigger, "success": self.success,
                "cost_seconds": self.cost_seconds, "error": self.error,
                "data": dict(self.data)}

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        return cls(strategy=str(data["strategy"]),
                   frequency=float(data["frequency"]),
                   trigger=str(data["trigger"]),
                   success=bool(data["success"]),
                   cost_seconds=float(data["cost_seconds"]),
                   error=str(data.get("error", "")),
                   data=dict(data.get("data", {})))


class FallbackExhausted(ReproError):
    """Every strategy of the fallback chain failed for one frequency."""

    def __init__(self, message, attempts=None, frequency=None):
        super().__init__(message)
        self.attempts = attempts or []
        self.frequency = frequency


def run_fallback_chain(strategies, frequency, report=None, recorder=None):
    """Run ``strategies`` in order until one succeeds.

    ``strategies`` is a sequence of ``(name, callable)``; each callable
    takes no arguments and returns the PSD value (it may raise any
    :class:`~repro.errors.ReproError`). The first strategy is the primary
    path; later ones are fallbacks triggered by the previous failure.

    Returns ``(value, attempts)``. Raises :class:`FallbackExhausted`
    (with the attempt records attached) when every strategy fails. Each
    attempt is mirrored into ``report`` when one is given: INFO for the
    primary path, WARNING for engaged fallbacks, ERROR for exhaustion.
    With an enabled ``recorder`` (:class:`repro.obs.Recorder`) every
    attempt additionally becomes an ``mft.attempt`` child span of the
    enclosing solve span, tagged with strategy and outcome.
    """
    if recorder is None:
        from ..obs import NULL_RECORDER
        recorder = NULL_RECORDER
    attempts = []
    trigger = "primary"
    for name, solve in strategies:
        t0 = time.perf_counter()
        recorder.count("fallback.attempts")
        try:
            with recorder.span("mft.attempt", strategy=name) as span:
                value = solve()
                span.tag(success=True)
        except ReproError as exc:
            cost = time.perf_counter() - t0
            record = AttemptRecord(
                strategy=name, frequency=float(frequency), trigger=trigger,
                success=False, cost_seconds=cost,
                error=f"{type(exc).__name__}: {exc}")
            attempts.append(record)
            logger.info("fallback: %s", record)
            if report is not None:
                report.add("fallback-attempt", Severity.WARNING,
                           str(record), strategy=name,
                           frequency=float(frequency), trigger=trigger,
                           success=False, cost_seconds=cost,
                           error=record.error)
            trigger = f"{name} failed: {type(exc).__name__}"
            continue
        cost = time.perf_counter() - t0
        record = AttemptRecord(
            strategy=name, frequency=float(frequency), trigger=trigger,
            success=True, cost_seconds=cost)
        attempts.append(record)
        if report is not None:
            severity = (Severity.INFO if trigger == "primary"
                        else Severity.WARNING)
            report.add("fallback-attempt", severity, str(record),
                       strategy=name, frequency=float(frequency),
                       trigger=trigger, success=True, cost_seconds=cost)
        if trigger != "primary":
            logger.warning("fallback: %s", record)
        return value, attempts
    message = (f"all {len(attempts)} solve strategies failed at "
               f"{float(frequency):.6g} Hz: "
               + "; ".join(str(a) for a in attempts))
    if report is not None:
        report.add("fallback-exhausted", Severity.ERROR, message,
                   frequency=float(frequency),
                   strategies=[a.strategy for a in attempts])
    logger.error("fallback chain exhausted at %.6g Hz", float(frequency))
    raise FallbackExhausted(message, attempts=attempts,
                            frequency=float(frequency))
