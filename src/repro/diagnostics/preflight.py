"""Preflight validation of a period discretization.

Run *before* any PSD computation, these checks catch the conditions under
which the MFT fixed point ``v(0) = (I − M)^{-1} g`` is fragile or
meaningless: a Floquet multiplier on/near the unit circle, an
ill-conditioned ``(I − M)``, an inconsistent clock schedule, or NaN/Inf
contamination in the discretized propagators. Findings are
severity-tagged so the engines can distinguish "abort" (ERROR) from
"proceed but watch the fallback chain" (WARNING).
"""

from __future__ import annotations

import logging

import numpy as np

from ..errors import ScheduleError, StabilityError
from ..linalg.checked import condition_number, eigenvalues
from ..tolerances import (
    DIRECT_SOLVE_COND_LIMIT,
    FLOQUET_MARGIN,
    SCHEDULE_TILE_RTOL,
)
from .report import DiagnosticsReport, Severity

logger = logging.getLogger(__name__)

#: Spectral radius closer to 1 than this margin is flagged as marginal.
DEFAULT_STABILITY_MARGIN = FLOQUET_MARGIN
#: cond(I − M) above this is flagged as ill-conditioned.
DEFAULT_CONDITION_LIMIT = DIRECT_SOLVE_COND_LIMIT
#: At most this many per-segment NaN/Inf findings are itemised.
_MAX_SEGMENT_FINDINGS = 8


def preflight_report(disc, stability_margin=DEFAULT_STABILITY_MARGIN,
                     condition_limit=DEFAULT_CONDITION_LIMIT):
    """Validate a :class:`~repro.lptv.discretization.PeriodDiscretization`.

    Returns a :class:`~repro.diagnostics.report.DiagnosticsReport`; never
    raises. Checks, in order:

    1. clock-schedule consistency (positive durations, no gaps, coverage
       of exactly one period);
    2. NaN/Inf in the per-segment propagators, Gramians and jump maps;
    3. Floquet stability: monodromy spectral radius vs 1 (ERROR when
       unstable, WARNING when within ``stability_margin`` of the unit
       circle);
    4. conditioning of the zero-frequency fixed-point matrix ``(I − M)``.

    Checks 3–4 are skipped when 2 finds non-finite propagators — the
    monodromy would be meaningless.
    """
    report = DiagnosticsReport(context="preflight")
    _check_schedule(disc, report)
    finite = _check_finite(disc, report)
    if finite:
        radius, multipliers = _check_stability(disc, report,
                                               stability_margin)
        if radius is not None and radius < 1.0:
            _check_conditioning(disc, report, condition_limit)
    else:
        report.warning(
            "stability-skipped",
            "stability and conditioning checks skipped: discretization "
            "contains non-finite propagators")
    if report.has_errors:
        logger.warning("preflight found errors: %s", report.summary())
    elif report.has_warnings:
        logger.info("preflight found warnings: %s", report.summary())
    else:
        logger.debug("preflight clean (%d segments, period %.3g s)",
                     len(disc.segments), disc.period)
    return report


def require_preflight(disc, stability_margin=DEFAULT_STABILITY_MARGIN,
                      condition_limit=DEFAULT_CONDITION_LIMIT):
    """Run :func:`preflight_report`; raise on ERROR-level findings.

    Unstable systems raise :class:`~repro.errors.StabilityError` (with
    the multipliers attached), schedule problems raise
    :class:`~repro.errors.ScheduleError`; both carry the full report on
    ``err.diagnostics``. Returns the report otherwise.
    """
    report = preflight_report(disc, stability_margin, condition_limit)
    if not report.has_errors:
        return report
    unstable = report.by_code("floquet-unstable")
    if unstable:
        data = unstable[0].data
        raise StabilityError(
            unstable[0].message,
            multipliers=data.get("multipliers"),
            spectral_radius=data.get("spectral_radius"),
        ).attach_diagnostics(report)
    schedule = [f for f in report.at_least(Severity.ERROR)
                if f.code.startswith("schedule")]
    if schedule:
        raise ScheduleError(schedule[0].message).attach_diagnostics(report)
    first = report.at_least(Severity.ERROR)[0]
    raise ScheduleError(
        f"preflight failed: {first}").attach_diagnostics(report)


def _check_schedule(disc, report):
    period = float(disc.period)
    if period <= 0.0:
        report.error("schedule-period",
                     f"period must be positive, got {period}",
                     period=period)
        return
    tol = SCHEDULE_TILE_RTOL * max(period, 1.0)
    t = 0.0
    for k, seg in enumerate(disc.segments):
        if seg.duration <= 0.0:
            report.error(
                "schedule-duration",
                f"segment {k} ({seg.phase_name!r}) has non-positive "
                f"duration {seg.duration:.6g}",
                segment=k, duration=float(seg.duration))
        if abs(seg.t_start - t) > tol:
            report.error(
                "schedule-gap",
                f"segment chain has a gap/overlap at t={seg.t_start:.6g} "
                f"(expected {t:.6g})",
                segment=k, t_start=float(seg.t_start), expected=float(t))
        t = seg.t_end
    if abs(t - period) > tol:
        report.error(
            "schedule-coverage",
            f"segments cover [0, {t:.6g}] but the period is {period:.6g}",
            covered=float(t), period=period)


def _check_finite(disc, report):
    """Flag NaN/Inf in propagators/Gramians/jumps; True when all finite."""
    bad = []
    for k, seg in enumerate(disc.segments):
        parts = {"propagator": seg.phi, "gramian": seg.gramian}
        if seg.jump is not None:
            parts["jump"] = seg.jump
        if seg.a_matrix is not None:
            parts["a-matrix"] = seg.a_matrix
        for name, mat in parts.items():
            if not np.all(np.isfinite(mat)):
                bad.append((k, name))
    for k, name in bad[:_MAX_SEGMENT_FINDINGS]:
        seg = disc.segments[k]
        report.error(
            "non-finite-propagator",
            f"segment {k} ({seg.phase_name!r}) has non-finite entries in "
            f"its {name}",
            segment=k, part=name)
    if len(bad) > _MAX_SEGMENT_FINDINGS:
        report.error(
            "non-finite-propagator",
            f"... and {len(bad) - _MAX_SEGMENT_FINDINGS} further "
            "segments with non-finite entries",
            suppressed=len(bad) - _MAX_SEGMENT_FINDINGS)
    return not bad


def _check_stability(disc, report, stability_margin):
    phi_t = disc.monodromy()
    multipliers = eigenvalues(phi_t, context="preflight stability check")
    multipliers = multipliers[np.argsort(-np.abs(multipliers))]
    radius = float(np.max(np.abs(multipliers))) if multipliers.size else 0.0
    mult_list = [complex(m) for m in multipliers]
    if radius >= 1.0:
        report.error(
            "floquet-unstable",
            f"periodic system is unstable: monodromy spectral radius "
            f"{radius:.6g} >= 1",
            spectral_radius=radius, multipliers=mult_list)
    elif radius >= 1.0 - stability_margin:
        report.warning(
            "floquet-margin",
            f"Floquet multiplier within {stability_margin:.3g} of the "
            f"unit circle (spectral radius {radius:.8g}): the periodic "
            "solve is fragile; expect fallback activity",
            spectral_radius=radius, multipliers=mult_list,
            margin=float(1.0 - radius))
    else:
        report.info(
            "floquet-stable",
            f"monodromy spectral radius {radius:.6g} "
            f"(margin {1.0 - radius:.3g})",
            spectral_radius=radius, multipliers=mult_list)
    return radius, multipliers


def _check_conditioning(disc, report, condition_limit):
    phi_t = disc.monodromy()
    n = phi_t.shape[0]
    system = np.eye(n) - phi_t
    cond = condition_number(system)
    if not np.isfinite(cond):
        report.error(
            "fixed-point-singular",
            "(I - M) is numerically singular at omega = 0: a Floquet "
            "multiplier sits at exactly 1",
            condition=cond)
    elif cond > condition_limit:
        report.warning(
            "fixed-point-conditioning",
            f"cond(I - M) = {cond:.3g} exceeds {condition_limit:.3g} at "
            "omega = 0; the periodic fixed point loses "
            f"~{np.log10(cond):.0f} digits",
            condition=cond, limit=float(condition_limit))
    else:
        report.info(
            "fixed-point-conditioning",
            f"cond(I - M) = {cond:.3g} at omega = 0",
            condition=cond)
    return cond
