"""Wall-clock and work budgets for PSD sweeps.

A pathological frequency must not be able to hang an entire sweep: every
engine accepts a :class:`SweepBudget` and checks it between frequencies
(and, for the transient engines, between clock periods). When the budget
runs out the remaining work is recorded as per-frequency failures instead
of looping forever.
"""

from __future__ import annotations

import logging
import time

from ..errors import BudgetExceededError

logger = logging.getLogger(__name__)


class SweepBudget:
    """A shared wall-clock / clock-period budget for one sweep.

    Parameters
    ----------
    wall_clock_seconds:
        Total wall-clock allowance for the sweep; ``None`` = unlimited.
    max_total_periods:
        Total clock periods the transient engines may integrate across
        *all* frequencies; ``None`` = unlimited.

    The budget is lazy: the clock starts on the first :meth:`start` /
    :meth:`exceeded` call, so one budget object can be built ahead of
    time and handed to an engine.
    """

    def __init__(self, wall_clock_seconds=None, max_total_periods=None):
        if wall_clock_seconds is not None and wall_clock_seconds < 0.0:
            raise ValueError(
                f"wall_clock_seconds must be >= 0, got {wall_clock_seconds}")
        if max_total_periods is not None and max_total_periods < 0:
            raise ValueError(
                f"max_total_periods must be >= 0, got {max_total_periods}")
        self.wall_clock_seconds = wall_clock_seconds
        self.max_total_periods = max_total_periods
        self._t_start = None
        self._spent_periods = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        """Start (or restart-idempotently) the wall clock; returns self."""
        if self._t_start is None:
            self._t_start = time.perf_counter()
        return self

    @property
    def elapsed_seconds(self):
        if self._t_start is None:
            return 0.0
        return time.perf_counter() - self._t_start

    @property
    def spent_periods(self):
        return self._spent_periods

    def charge_periods(self, n):
        """Record ``n`` integrated clock periods against the budget."""
        self._spent_periods += int(n)

    # -- querying -----------------------------------------------------------

    def remaining_seconds(self):
        """Seconds left, ``None`` when unlimited (never negative)."""
        if self.wall_clock_seconds is None:
            return None
        return max(0.0, self.wall_clock_seconds - self.elapsed_seconds)

    def deadline(self):
        """Absolute ``time.perf_counter()`` deadline, or ``None``."""
        if self.wall_clock_seconds is None:
            return None
        self.start()
        return self._t_start + self.wall_clock_seconds

    def exceeded(self):
        """Human-readable reason the budget is spent, or ``None``."""
        self.start()
        if (self.wall_clock_seconds is not None
                and self.elapsed_seconds >= self.wall_clock_seconds):
            return (f"wall-clock budget of {self.wall_clock_seconds:.3g} s "
                    f"spent ({self.elapsed_seconds:.3g} s elapsed)")
        if (self.max_total_periods is not None
                and self._spent_periods >= self.max_total_periods):
            return (f"period budget of {self.max_total_periods} clock "
                    f"periods spent ({self._spent_periods} integrated)")
        return None

    def check(self):
        """Raise :class:`~repro.errors.BudgetExceededError` when spent."""
        reason = self.exceeded()
        if reason is not None:
            logger.warning("sweep budget exceeded: %s", reason)
            raise BudgetExceededError(
                reason, elapsed_seconds=self.elapsed_seconds,
                spent_periods=self._spent_periods)

    def __repr__(self):
        return (f"SweepBudget(wall_clock_seconds="
                f"{self.wall_clock_seconds}, max_total_periods="
                f"{self.max_total_periods}, elapsed="
                f"{self.elapsed_seconds:.3g}s, spent_periods="
                f"{self._spent_periods})")


def as_budget(budget):
    """Normalise ``None`` | seconds | SweepBudget to a SweepBudget.

    A bare number is interpreted as a wall-clock allowance in seconds —
    the common case at the API surface (``psd(freqs, budget=30.0)``).
    """
    if budget is None:
        return SweepBudget()
    if isinstance(budget, SweepBudget):
        return budget
    return SweepBudget(wall_clock_seconds=float(budget))
