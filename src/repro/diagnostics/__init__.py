"""Solver guardrails: preflight validation, budgets, fallback chains.

The MFT engine replaces thousands of transient clock cycles with one
periodic fixed-point solve — a solve that is near-singular whenever a
Floquet multiplier of the (frequency-shifted) system approaches the unit
circle. This package treats that fragility as a first-class, recoverable
outcome rather than an abort:

* :mod:`repro.diagnostics.report` — severity-tagged findings attached to
  every ``PsdResult.info["diagnostics"]`` and to raised errors;
* :mod:`repro.diagnostics.preflight` — stability margin, conditioning,
  schedule and NaN/Inf checks run before any PSD computation;
* :mod:`repro.diagnostics.fallback` — the bounded graceful-degradation
  chain (refine grid → regularized least squares → brute-force
  transient) with per-attempt records;
* :mod:`repro.diagnostics.budget` — wall-clock / clock-period budgets so
  a pathological frequency cannot hang a sweep.
"""

from .report import (
    DiagnosticsReport,
    Finding,
    FrequencyFailure,
    Severity,
)
from .preflight import preflight_report, require_preflight
from .fallback import (
    AttemptRecord,
    FallbackExhausted,
    FallbackPolicy,
    run_fallback_chain,
)
from .budget import SweepBudget, as_budget

__all__ = [
    "Severity",
    "Finding",
    "FrequencyFailure",
    "DiagnosticsReport",
    "preflight_report",
    "require_preflight",
    "FallbackPolicy",
    "AttemptRecord",
    "FallbackExhausted",
    "run_fallback_chain",
    "SweepBudget",
    "as_budget",
]
