"""Deprecation shims for API transitions.

The analyzer constructors went keyword-only after the model/system
argument (see DESIGN.md §9); :func:`absorb_positional` keeps the old
positional call forms working for one release while warning.
"""

from __future__ import annotations

import warnings
from typing import Any, Sequence

__all__ = ["absorb_positional"]


def absorb_positional(owner: str, names: Sequence[str],
                      args: tuple[Any, ...],
                      kwargs: dict[str, Any],
                      stacklevel: int = 3) -> dict[str, Any]:
    """Map legacy positional ``args`` onto ``names``, merging into kwargs.

    Emits a :class:`DeprecationWarning` when any positional argument is
    present, raises :class:`TypeError` on overflow or positional/keyword
    conflict (matching what a real keyword-only signature would do).
    Returns the merged keyword dict.
    """
    if not args:
        return kwargs
    if len(args) > len(names):
        raise TypeError(
            f"{owner}() takes at most {len(names) + 2} positional "
            f"arguments ({len(args) + 2} given)")
    warnings.warn(
        f"passing {owner}() arguments positionally is deprecated; "
        f"use keywords ({', '.join(names[:len(args)])}=...)",
        DeprecationWarning, stacklevel=stacklevel)
    merged = dict(kwargs)
    for name, value in zip(names, args):
        if name in merged:
            raise TypeError(
                f"{owner}() got multiple values for argument '{name}'")
        merged[name] = value
    return merged
