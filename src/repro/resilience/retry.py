"""Chunk-level retry policy: exponential backoff, jitter, timeouts.

One :class:`RetryPolicy` instance parameterizes how the sweep executor
treats a failed chunk — an unexpected worker exception, a broken process
pool, or a chunk running past its per-chunk timeout.  The defaults come
from the named constants in :mod:`repro.tolerances` (SCN003: no magic
delays), and the policy is a frozen dataclass so one instance can be
shared by concurrent sweeps.

Jitter is *deterministic per (chunk, attempt)* — a seeded hash, not
``random`` — so a retried run schedules identically; its purpose is
decorrelating chunks within one run (all chunks failed by one pool
crash must not retry in lockstep), not randomizing across runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import ReproError
from ..tolerances import (
    RETRY_BACKOFF_CAP_SECONDS,
    RETRY_BACKOFF_FACTOR,
    RETRY_BACKOFF_SECONDS,
    RETRY_JITTER_FRACTION,
)

__all__ = ["NO_RETRY", "RetryPolicy", "resolve_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """Tuning knobs of the executor's chunk-retry loop.

    Parameters
    ----------
    max_retries:
        Additional attempts after the first (default 2: a chunk runs at
        most three times before degrading to NaN + failure records with
        stage ``"retry-exhausted"`` / ``"worker-crash"`` /
        ``"timeout"``).
    backoff_seconds / backoff_factor / backoff_cap_seconds:
        Delay before attempt ``k`` (1-based retry) is
        ``min(cap, backoff_seconds * factor**(k-1))``, plus jitter.
    jitter:
        Fraction of the delay randomized (deterministically, see the
        module docstring) on top of the base backoff.
    chunk_timeout_seconds:
        Wall-clock allowance for one chunk attempt on the pooled
        backends; an expired chunk is abandoned and requeued.  ``None``
        (default) disables timeouts.  The serial backend cannot preempt
        a running chunk, so it ignores this knob.
    """

    max_retries: int = 2
    backoff_seconds: float = RETRY_BACKOFF_SECONDS
    backoff_factor: float = RETRY_BACKOFF_FACTOR
    backoff_cap_seconds: float = RETRY_BACKOFF_CAP_SECONDS
    jitter: float = RETRY_JITTER_FRACTION
    chunk_timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0.0:
            raise ReproError(
                f"backoff_seconds must be >= 0, got "
                f"{self.backoff_seconds}")
        if self.backoff_factor < 1.0:
            raise ReproError(
                f"backoff_factor must be >= 1, got "
                f"{self.backoff_factor}")
        if self.backoff_cap_seconds < 0.0:
            raise ReproError(
                f"backoff_cap_seconds must be >= 0, got "
                f"{self.backoff_cap_seconds}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(
                f"jitter must be in [0, 1], got {self.jitter}")
        if (self.chunk_timeout_seconds is not None
                and self.chunk_timeout_seconds <= 0.0):
            raise ReproError(
                f"chunk_timeout_seconds must be positive or None, got "
                f"{self.chunk_timeout_seconds}")

    def delay(self, attempt: int, chunk: int = 0) -> float:
        """Backoff before retry ``attempt`` (1-based) of ``chunk``."""
        if attempt < 1:
            return 0.0
        base = min(self.backoff_cap_seconds,
                   self.backoff_seconds
                   * self.backoff_factor ** (attempt - 1))
        if not self.jitter:
            return base
        digest = hashlib.sha256(
            repr((int(chunk), int(attempt))).encode()).digest()
        u = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return base * (1.0 + self.jitter * u)


#: Retry disabled: a failed chunk degrades immediately.
NO_RETRY = RetryPolicy(max_retries=0)


def resolve_retry(retry: "RetryPolicy | bool | None") -> RetryPolicy:
    """Normalise the ``retry=`` API argument to a :class:`RetryPolicy`.

    ``None``/``True`` select the default policy, ``False`` disables
    retries, a :class:`RetryPolicy` passes through.
    """
    if retry is None or retry is True:
        return RetryPolicy()
    if retry is False:
        return NO_RETRY
    if not isinstance(retry, RetryPolicy):
        raise ReproError(
            "retry must be a RetryPolicy, True/None (defaults), or "
            f"False (disabled), got {type(retry).__name__}")
    return retry
