"""Deterministic, seedable fault injection for the sweep stack.

Operational resilience (chunk retry, pool respawn, checkpoint/resume —
see :mod:`repro.mft.executor`) is untestable without a way to *cause*
the failures it defends against.  This module provides injection seams
at the few places real faults enter a sweep:

========================  ==================================================
site                      fired from
========================  ==================================================
``linalg.checked_solve``  :func:`repro.linalg.checked.checked_solve`
``mft.solve``             per frequency in the MFT engine's sweep loop
``mft.batch``             per ω-block in the spectral-batch sweep
``executor.chunk``        the executor worker body (start of every chunk)
``executor.dispatch``     the executor dispatcher, before each submit
========================  ==================================================

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries plus a
seed.  Whether a spec fires at a given site is a *pure function* of
``(seed, site, key, attempt)`` — no mutable counters — so the decision
reproduces identically across thread workers, forked process workers,
and respawned pools: the same plan injects the same faults every run,
and a retried chunk (``attempt >= spec.attempts``) recomputes clean.

Zero overhead when disabled: the seams call :func:`fire`, whose first
line checks a module-level activation counter and returns — the same
``NULL_RECORDER``-style fast path as :mod:`repro.obs`.  Plans only act
inside an :func:`activate` context, which the executor enters around
each worker chunk; library users never see an injected fault unless
they passed ``faults=`` explicitly.

Injected exceptions derive from :class:`InjectedFault`, which is
deliberately **not** a :class:`~repro.errors.ReproError`: the fallback
chain catches only ``ReproError``, so an injected transient escapes the
per-frequency chain and surfaces at the chunk boundary where the
executor's retry loop — the machinery under test — must recover it.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from ..errors import ReproError

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedPickleError",
    "InjectedSweepKill",
    "InjectedTransientError",
    "InjectedWorkerCrash",
    "NULL_FAULT_PLAN",
    "activate",
    "fire",
]

#: Exit status of a hard-crashed process worker (mimics a SIGKILL'd /
#: OOM-killed child as seen by ``concurrent.futures``).
CRASH_EXIT_CODE: int = 1

FAULT_SITES: tuple[str, ...] = (
    "linalg.checked_solve",
    "mft.solve",
    "mft.batch",
    "executor.chunk",
    "executor.dispatch",
)

FAULT_KINDS: tuple[str, ...] = ("transient", "crash", "slow", "pickle",
                                "kill")


class InjectedFault(Exception):
    """Base class of every injected failure.

    Not a :class:`~repro.errors.ReproError` on purpose — injected
    faults must bypass the numerical fallback chain (which would
    *change the numbers* by refining the grid) and hit the executor's
    chunk-retry machinery instead, which recomputes bit-identically.
    """


class InjectedTransientError(InjectedFault):
    """A transient solve failure that clears on retry."""


class InjectedWorkerCrash(InjectedFault):
    """A worker death.  In a forked process worker the plan calls
    ``os._exit`` instead, so the parent sees a genuine broken pool."""


class InjectedPickleError(InjectedFault):
    """A simulated failure serializing a chunk result back to the
    dispatcher (the exception itself pickles fine — it models the
    *event*, not an actually unpicklable payload)."""


class InjectedSweepKill(InjectedFault):
    """Dispatcher-side kill: aborts the sweep mid-flight, as a host
    interruption would.  Used to exercise checkpoint/resume."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    Parameters
    ----------
    site:
        One of :data:`FAULT_SITES`.
    kind:
        ``"transient"`` raises :class:`InjectedTransientError`;
        ``"crash"`` hard-exits a forked process worker (raises
        :class:`InjectedWorkerCrash` on thread/serial backends);
        ``"slow"`` sleeps ``seconds`` without raising;
        ``"pickle"`` raises :class:`InjectedPickleError`;
        ``"kill"`` raises :class:`InjectedSweepKill` (dispatch site).
    rate:
        Fraction of matching events that fire, decided by a seeded hash
        of the event key (default 1.0 = always).
    attempts:
        Fire only while the chunk attempt number is below this, so a
        retried chunk computes clean (default 1: first attempt only).
    seconds:
        Sleep duration for ``kind="slow"``.
    match:
        Key/value filter against the event key (e.g.
        ``{"chunk": 16}`` targets the chunk starting at index 16).
    """

    site: str
    kind: str
    rate: float = 1.0
    attempts: int = 1
    seconds: float = 0.0
    match: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ReproError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{FAULT_SITES}")
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ReproError(
                f"fault rate must be in [0, 1], got {self.rate}")
        if self.attempts < 1:
            raise ReproError(
                f"fault attempts must be >= 1, got {self.attempts}")
        if self.seconds < 0.0:
            raise ReproError(
                f"fault seconds must be >= 0, got {self.seconds}")


def _u01(seed: int, site: str, key: Mapping[str, Any]) -> float:
    """Deterministic uniform [0, 1) draw for one event."""
    digest = hashlib.sha256()
    digest.update(repr((int(seed), site,
                        sorted(key.items()))).encode())
    return int.from_bytes(digest.digest()[:8], "big") / 2.0 ** 64


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules.

    Picklable (ships to process workers); records the constructing
    process id so ``kind="crash"`` can distinguish "I am a forked
    worker — hard-exit" from "I am in the dispatcher's process — raise".
    The per-process :attr:`fired` log is best-effort test telemetry
    (a hard-crashed worker takes its log with it); the firing *decision*
    never reads it.
    """

    specs: Sequence[FaultSpec] = ()
    seed: int = 0
    parent_pid: int = field(default_factory=os.getpid)
    fired: list[dict[str, Any]] = field(default_factory=list)

    @property
    def enabled(self) -> bool:
        return bool(self.specs)

    def fire(self, site: str, attempt: int = 0, **key: Any) -> None:
        """Evaluate every matching spec for one event; may raise/sleep."""
        for spec in self.specs:
            if spec.site != site:
                continue
            if attempt >= spec.attempts:
                continue
            if spec.match is not None and any(
                    key.get(name) != value
                    for name, value in spec.match.items()):
                continue
            if spec.rate < 1.0 and _u01(self.seed, site,
                                        key) >= spec.rate:
                continue
            self.fired.append({"site": site, "kind": spec.kind,
                               "attempt": int(attempt), "key": dict(key)})
            self._act(spec, site, key)

    def _act(self, spec: FaultSpec, site: str,
             key: Mapping[str, Any]) -> None:
        label = f"injected {spec.kind} at {site} ({dict(key)!r})"
        if spec.kind == "transient":
            raise InjectedTransientError(label)
        if spec.kind == "crash":
            if os.getpid() != self.parent_pid:
                # A forked worker: die the way a real crashed worker
                # does, so the dispatcher sees a broken pool rather
                # than a tidy exception.
                os._exit(CRASH_EXIT_CODE)
            raise InjectedWorkerCrash(label)
        if spec.kind == "pickle":
            raise InjectedPickleError(label)
        if spec.kind == "kill":
            raise InjectedSweepKill(label)
        # kind == "slow"
        time.sleep(spec.seconds)


#: Shared disabled plan — the default everywhere.
NULL_FAULT_PLAN = FaultPlan()


_LOCAL = threading.local()
_ACTIVE_LOCK = threading.Lock()
#: Number of threads currently inside an :func:`activate` context.
#: :func:`fire`'s fast path reads this without the lock: when zero —
#: the production case — injection costs one global read per seam.
_ACTIVE: int = 0


@contextmanager
def activate(plan: FaultPlan | None,
             attempt: int = 0) -> Iterator[None]:
    """Arm ``plan`` for the current thread for the duration of the
    ``with`` block (no-op for ``None`` or an empty plan)."""
    global _ACTIVE
    if plan is None or not plan.enabled:
        yield
        return
    previous = getattr(_LOCAL, "state", None)
    _LOCAL.state = (plan, int(attempt))
    with _ACTIVE_LOCK:
        _ACTIVE += 1
    try:
        yield
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE -= 1
        _LOCAL.state = previous


def fire(site: str, **key: Any) -> None:
    """Injection seam: evaluate the thread's active plan at one event.

    The disabled fast path (no plan active anywhere) is a single module
    -global integer check; with plans active on *other* threads only, a
    thread-local read follows.  Called at per-frequency / per-chunk
    granularity, never inside per-segment loops.
    """
    if not _ACTIVE:
        return
    state = getattr(_LOCAL, "state", None)
    if state is None:
        return
    plan, attempt = state
    plan.fire(site, attempt, **key)
