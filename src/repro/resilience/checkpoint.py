"""Chunk-granular checkpoint/resume store for PSD sweeps.

A multi-hour corner sweep must survive a host interruption without
losing completed work.  :class:`SweepCheckpoint` persists each finished
executor chunk as it completes — the float64 values bit-exactly in an
``.npz`` per chunk, the failure/attempt/finding records as JSON in one
``meta.json`` — so a re-run with the same ``checkpoint=`` path loads the
completed chunks and computes only the missing frequencies.  Resumed
values are byte-for-byte the stored ones, so an interrupted-and-resumed
sweep is bit-identical to an uninterrupted one (the chaos gate in
``benchmarks/test_perf_regression.py`` pins this).

Compatibility is enforced through a *key*: the executor derives it from
the :func:`~repro.mft.context.discretization_fingerprint` of the system
(content hash of phases, matrices, density), the analysed output row,
a hash of the frequency grid bytes, the resolved solver, the chunk
size, and the failure mode.  :meth:`SweepCheckpoint.open` raises when a
directory holds chunks for a *different* key — a checkpoint can never
silently splice stale numbers into a new sweep.  Deleting the directory
resets it.

Writes are atomic (`os.replace` of a temp file) and incremental: a kill
between chunk writes leaves a loadable store containing every chunk
that fully completed.  Budget-skipped and failed chunks are *not*
recorded, so a resume retries them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import ReproError

__all__ = ["SweepCheckpoint"]

_META_NAME = "meta.json"
_FORMAT_VERSION = 1


def _jsonify(value: Any) -> Any:
    """Best-effort JSON coercion for finding data payloads."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return str(value)


class SweepCheckpoint:
    """On-disk store of completed sweep chunks under one directory.

    Construct with a path (created on first use), hand it — or just the
    path — to ``psd_sweep(..., checkpoint=...)``.  The executor drives
    the lifecycle: :meth:`open` validates the key and returns the chunks
    already on disk, :meth:`record` persists each newly completed chunk.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self._key: dict[str, Any] | None = None
        self._chunks: dict[int, dict[str, Any]] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def meta_path(self) -> Path:
        return self.path / _META_NAME

    def open(self, key: dict[str, Any]
             ) -> dict[int, tuple[Any, ...]]:
        """Bind the store to ``key``; load chunks recorded under it.

        Returns ``{chunk_start: (values, failures, attempts, findings,
        None)}`` — the executor's chunk-output shape — for every chunk
        already on disk.  An empty or absent directory initialises
        fresh; a directory recorded under a different key raises
        :class:`~repro.errors.ReproError` (delete it to start over).
        """
        # Imported here, not at module level: repro.linalg.checked pulls
        # in repro.resilience.faults for its injection seam, and
        # diagnostics.preflight pulls in repro.linalg — a top-level
        # diagnostics import here would close that cycle.
        from ..diagnostics.fallback import AttemptRecord
        from ..diagnostics.report import Finding, FrequencyFailure

        self.path.mkdir(parents=True, exist_ok=True)
        self._key = dict(key)
        self._chunks = {}
        if not self.meta_path.exists():
            self._write_meta()
            return {}
        try:
            meta = json.loads(self.meta_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"checkpoint {self.path} is unreadable: {exc}") from exc
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ReproError(
                f"checkpoint {self.path} has format version "
                f"{meta.get('format_version')!r}; this build reads "
                f"{_FORMAT_VERSION}")
        stored = meta.get("key", {})
        if stored != self._key:
            mismatched = sorted(
                name for name in set(stored) | set(self._key)
                if stored.get(name) != self._key.get(name))
            raise ReproError(
                f"checkpoint {self.path} was recorded for a different "
                f"sweep (mismatched: {mismatched}); delete the "
                "directory to start over")
        completed: dict[int, tuple[Any, ...]] = {}
        for record in meta.get("chunks", []):
            start = int(record["start"])
            npz_path = self.path / record["file"]
            if not npz_path.exists():
                continue  # interrupted between npz and meta rewrite
            with np.load(npz_path) as payload:
                values = np.array(payload["values"], dtype=float)
            if values.size != int(record["size"]):
                raise ReproError(
                    f"checkpoint chunk {npz_path} holds {values.size} "
                    f"values; meta says {record['size']}")
            failures = [FrequencyFailure.from_dict(f)
                        for f in record["failures"]]
            attempts = [AttemptRecord.from_dict(a)
                        for a in record["attempts"]]
            findings = [Finding.from_dict(f)
                        for f in record["findings"]]
            completed[start] = (values, failures, attempts, findings,
                                None)
            self._chunks[start] = record
        return completed

    def record(self, start: int, values: np.ndarray, failures: list,
               attempts: list, findings: list) -> None:
        """Persist one completed chunk (values bit-exact, records JSON).

        ``failures`` carry chunk-local indices — the executor's merge
        adds the chunk offset, and a resumed chunk must replay through
        the same merge.
        """
        if self._key is None:
            raise ReproError(
                "SweepCheckpoint.record before open(): the store is "
                "not bound to a sweep key yet")
        start = int(start)
        array = np.asarray(values, dtype=float)
        filename = f"chunk_{start:08d}.npz"
        self._atomic_write_npz(self.path / filename, array)
        self._chunks[start] = {
            "start": start,
            "size": int(array.size),
            "file": filename,
            "failures": [f.to_dict() for f in failures],
            "attempts": [a.to_dict() for a in attempts],
            "findings": [f.to_dict() for f in findings],
        }
        self._write_meta()

    # -- introspection -----------------------------------------------------

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    def __repr__(self) -> str:
        return (f"SweepCheckpoint({str(self.path)!r}, "
                f"{len(self._chunks)} chunks)")

    # -- internals ---------------------------------------------------------

    def _write_meta(self) -> None:
        document = {
            "format_version": _FORMAT_VERSION,
            "key": self._key,
            "chunks": [self._chunks[start]
                       for start in sorted(self._chunks)],
        }
        tmp = self.meta_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=2,
                                  default=_jsonify) + "\n")
        os.replace(tmp, self.meta_path)

    @staticmethod
    def _atomic_write_npz(path: Path, values: np.ndarray) -> None:
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as handle:
            np.savez(handle, values=values)
        os.replace(tmp, path)
