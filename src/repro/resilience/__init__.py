"""Operational resilience for sweep execution.

Three pieces, threaded through :mod:`repro.mft.executor`:

* :mod:`repro.resilience.faults` — deterministic, seedable fault
  injection (:class:`FaultPlan`) with zero-overhead seams in the linear
  -algebra wrappers, the MFT engine, and the executor worker body;
* :mod:`repro.resilience.retry` — chunk-level :class:`RetryPolicy`
  (exponential backoff + jitter, per-chunk timeouts);
* :mod:`repro.resilience.checkpoint` — :class:`SweepCheckpoint`, the
  chunk-granular resume store keyed on the discretization fingerprint.

See DESIGN.md §10 for the fault model and the retry state machine.
"""

from .checkpoint import SweepCheckpoint
from .faults import (
    FAULT_KINDS,
    FAULT_SITES,
    NULL_FAULT_PLAN,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedPickleError,
    InjectedSweepKill,
    InjectedTransientError,
    InjectedWorkerCrash,
)
from .retry import NO_RETRY, RetryPolicy, resolve_retry

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedPickleError",
    "InjectedSweepKill",
    "InjectedTransientError",
    "InjectedWorkerCrash",
    "NO_RETRY",
    "NULL_FAULT_PLAN",
    "RetryPolicy",
    "SweepCheckpoint",
    "resolve_retry",
]
