#!/usr/bin/env python
"""Designing a track-and-hold: kT/C noise and the duty-cycle trade-off.

A data-converter front-end scenario: a source resistance plus sampling
switch charge a hold capacitor. The total noise power is the textbook
kT/C independent of every resistance, but *where that power sits in
frequency* depends strongly on the hold time — the "sampled-data-like"
behaviour of the paper's Fig. 3. This example sweeps the hold capacitor
and the duty cycle and prints the resulting noise budget, cross-checked
against the Rice closed form.

Run:  python examples/sample_hold_ktc.py
"""

import numpy as np

from repro import NoiseAnalysis
from repro.baselines.rice import rice_switched_rc_psd
from repro.circuits import (
    SampleHoldParams,
    SwitchedRcParams,
    sample_hold_system,
    switched_rc_system,
)
from repro.io.tables import format_table
from repro.units import format_value


def ktc_budget():
    print("kT/C budget versus hold capacitor "
          "(1 MHz clock, 1 kOhm source, 200 Ohm switch):")
    rows = []
    for c_hold in (1e-12, 4e-12, 10e-12, 40e-12):
        params = SampleHoldParams(c_hold=c_hold)
        analysis = NoiseAnalysis(sample_hold_system(params),
                                 segments_per_phase=32)
        variance = analysis.output_variance()
        rows.append([format_value(c_hold, "F"),
                     np.sqrt(variance) * 1e6,
                     np.sqrt(params.ktc_variance) * 1e6])
    print(format_table(
        ["C_hold", "simulated rms noise [uV]", "sqrt(kT/C) [uV]"], rows))


def duty_cycle_shaping():
    print("\nSpectral shaping versus duty cycle "
          "(switched RC, T = 5 tau):")
    base = dict(resistance=10e3, capacitance=1e-9, period=5e-5)
    freqs = np.array([1e3, 10e3, 20e3, 40e3])
    rows = []
    for duty in (0.9, 0.5, 0.2):
        params = SwitchedRcParams(duty=duty, **base)
        analysis = NoiseAnalysis(switched_rc_system(params),
                                 segments_per_phase=48)
        psd = analysis.psd(freqs)
        rice = rice_switched_rc_psd(params, freqs)
        worst = np.max(np.abs(10 * np.log10(psd.psd / rice)))
        rows.append([duty] + [f"{v:.3g}" for v in psd.psd]
                    + [f"{worst:.4f}"])
    print(format_table(
        ["duty"] + [f"S({f / 1e3:.0f}k)" for f in freqs]
        + ["max dev vs Rice [dB]"], rows))
    print("Lower duty -> longer hold -> noise power squeezed below "
          "1/t_hold (sampled-data-like spectrum, paper Fig. 3).")


def per_source_breakdown():
    print("\nPer-source contribution at 100 kHz "
          "(source resistor vs switch):")
    params = SampleHoldParams()
    analysis = NoiseAnalysis(sample_hold_system(params),
                             segments_per_phase=32)
    print(analysis.contribution_report(100e3))
    print(f"(R_source = {params.r_source:.0f} Ohm, "
          f"R_switch = {params.r_switch:.0f} Ohm: contributions track "
          "the resistances during the track phase.)")


if __name__ == "__main__":
    ktc_budget()
    duty_cycle_shaping()
    per_source_breakdown()
