#!/usr/bin/env python
"""Netlist-driven workflow: analyse a circuit written as SPICE-like text.

The scenario: a colleague hands you a switched-capacitor gain stage as a
netlist file. Parse it, sanity-check the topology phase by phase, build
the LPTV model and compare the noise spectrum of two op-amp bandwidth
choices — all without writing circuit-assembly code.

Run:  python examples/netlist_workflow.py
"""

import numpy as np

from repro import NoiseAnalysis, parse_netlist
from repro.circuit.topology import diagnose
from repro.io.tables import format_table

NETLIST_TEMPLATE = """* switched-capacitor gain-of-4 stage
* input sampling branch: Cs charges in phi1, dumps into the virtual
* ground in phi2; Cf sets the gain Cs/Cf = 4.
Vin  in    0    0
S1   in    a    phi1  ron=200
Cs   a     0    400p
S2   a     vg   phi2  ron=200
Cf   vg    out  100p
* damping branch keeps the stage's discrete-time pole inside the unit
* circle so a steady-state noise analysis exists.
S3   b     out  phi1  ron=200
S4   b     vg   phi2  ron=200
Cd   b     0    20p
OPAMP_SF op1 0 vg out wu={wu} noise=4.0e-16
.clock f=100k phases=phi1,phi2 duty=0.5
.output out
"""


def build(wu):
    parsed = parse_netlist(NETLIST_TEMPLATE.format(wu=wu))
    findings = diagnose(parsed.netlist, parsed.schedule)
    if findings:
        raise SystemExit("topology problems:\n" + "\n".join(findings))
    return parsed.to_model()


def main():
    freqs = np.linspace(1e3, 300e3, 50)
    rows = []
    spectra = {}
    for label, wu in (("10 MHz op-amp", 2 * np.pi * 10e6),
                      ("100 MHz op-amp", 2 * np.pi * 100e6)):
        model = build(wu)
        analysis = NoiseAnalysis(model, segments_per_phase=32)
        spectrum = analysis.psd(freqs)
        spectra[label] = spectrum
        rows.append([
            label,
            np.sqrt(analysis.output_variance()) * 1e6,
            spectrum.at(10e3),
            spectrum.at(200e3),
        ])
    print(format_table(
        ["op-amp", "total rms noise [uV]", "S(10 kHz)", "S(200 kHz)"],
        rows,
        title="Gain-of-4 SC stage: op-amp bandwidth vs output noise"))
    print("\nA faster op-amp settles the charge transfer harder and "
          "samples more wideband noise onto the capacitors — the same "
          "trend as the paper's Fig. 9.")

    ratio = spectra["100 MHz op-amp"].psd / spectra["10 MHz op-amp"].psd
    print(f"PSD ratio (100 MHz / 10 MHz): min {ratio.min():.2f}, "
          f"max {ratio.max():.2f} over {freqs[0] / 1e3:.0f}-"
          f"{freqs[-1] / 1e3:.0f} kHz")


if __name__ == "__main__":
    main()
