#!/usr/bin/env python
"""SC band-pass filter: signal response, noise spectrum and in-band SNR.

A filter-design scenario on the paper's band-pass circuit (Fig. 4 class:
128 kHz clock, 80 Ω switches, 20 nV/√Hz op-amps): compute the signal
frequency response and the output noise spectrum with the *same* LPTV
machinery, then estimate the dynamic range for a full-scale tone at the
centre frequency.

Run:  python examples/bandpass_filter_noise.py
"""

import numpy as np

from repro import NoiseAnalysis
from repro.circuits import ScBandpassParams, sc_bandpass_system
from repro.io.asciiplot import ascii_plot
from repro.io.tables import format_table
from repro.lptv.htf import harmonic_transfer_functions
from repro.noise.snr import signal_power_sine, snr_db


def main():
    params = ScBandpassParams(f_center=10e3, q_factor=8.0)
    model = sc_bandpass_system(params)
    print(f"SC band-pass biquad: f0 = {params.f_center / 1e3:.0f} kHz, "
          f"Q = {params.q_factor:.0f}, f_clk = "
          f"{params.f_clock / 1e3:.0f} kHz")
    print(f"capacitors: Cin = {params.c_in * 1e12:.2f} pF, "
          f"Cloop = {params.c_loop * 1e12:.2f} pF, "
          f"Cq = {params.c_q * 1e12:.2f} pF, "
          f"Ci = {params.c_integrate * 1e12:.0f} pF")

    # --- signal transfer through the switched filter ---------------------
    signal_system = model.signal_system()
    freqs = np.linspace(2e3, 24e3, 23)
    gains = []
    for f in freqs:
        htf = harmonic_transfer_functions(signal_system,
                                          2.0 * np.pi * f,
                                          n_harmonics=0,
                                          segments_per_phase=16)
        gains.append(abs(htf[(0, 0)]))
    gains = np.asarray(gains)
    print(ascii_plot(freqs / 1e3, 20 * np.log10(gains), width=64,
                     height=12, label="signal gain [dB] vs f [kHz]"))

    # --- noise spectrum ----------------------------------------------------
    analysis = NoiseAnalysis(model, segments_per_phase=24)
    spectrum = analysis.psd(freqs)
    print(ascii_plot(freqs / 1e3, spectrum.db(), width=64, height=12,
                     label="output noise PSD [dB V^2/Hz] vs f [kHz]"))

    # --- dynamic range -----------------------------------------------------
    f_peak = freqs[np.argmax(gains)]
    gain_peak = gains.max()
    full_scale_in = 0.1  # 100 mV input tone
    signal_power = signal_power_sine(full_scale_in * gain_peak)
    band = (params.f_center * (1 - 0.5 / params.q_factor),
            params.f_center * (1 + 0.5 / params.q_factor))
    fine = np.linspace(band[0], band[1], 40)
    in_band_noise = 2.0 * analysis.psd(fine).integrated_power()
    rows = [
        ["resonant gain", f"{gain_peak:.3f} at "
         f"{f_peak / 1e3:.1f} kHz"],
        ["total output variance [V^2]", analysis.output_variance()],
        ["in-band noise power [V^2]", in_band_noise],
        ["in-band SNR for 100 mV input [dB]",
         snr_db(signal_power, in_band_noise)],
    ]
    print(format_table(["quantity", "value"], rows))


if __name__ == "__main__":
    main()
