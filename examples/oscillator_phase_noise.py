#!/usr/bin/env python
"""Extension: phase noise of a 3-stage tanh ring oscillator.

The companion-draft experiment (its Figs. 17/18): solve the oscillator's
periodic orbit by shooting, extract the linear variance growth of the
noise perturbation, and produce the single-sideband phase-noise curve,
checked against the Demir Lorentzian formula.

Run:  python examples/oscillator_phase_noise.py
"""

import numpy as np

from repro.baselines.demir import demir_corner_frequency
from repro.io.asciiplot import ascii_plot
from repro.io.tables import format_table
from repro.oscillator.ring3 import Ring3Params, ring3_phase_noise


def main():
    params = Ring3Params()
    print("3-stage tanh ring oscillator "
          f"(R = {params.resistance / 1e3:.0f} kOhm, "
          f"C = {params.capacitance * 1e12:.0f} pF, "
          f"I_b = {params.i_bias * 1e6:.0f} uA)")

    offsets = np.logspace(4.5, 7, 11)
    result = ring3_phase_noise(params=params, offsets=offsets,
                               n_periods=40, n_segments=128)

    rows = [
        ["oscillation frequency [MHz]", result["f_osc"] / 1e6],
        ["variance slope B [V^2/s]", result["variance_slope"]],
        ["zero-crossing slew S [V/s]", result["zero_crossing_slew"]],
        ["c = B/S^2 [s]", result["c"]],
        ["Lorentzian corner [Hz]",
         demir_corner_frequency(result["f_osc"], result["c"])],
    ]
    print(format_table(["quantity", "value"], rows))

    print()
    print(ascii_plot(offsets, result["ssb_demir_dbc"], width=64,
                     height=14, logx=True,
                     label="SSB phase noise L(f_m) [dBc/Hz] vs offset "
                           "[Hz]  (draft Fig. 18)"))
    slope = (result["ssb_demir_dbc"][0] - result["ssb_demir_dbc"][-1]) \
        / (np.log10(offsets[-1]) - np.log10(offsets[0]))
    print(f"slope: {slope:.1f} dB/decade (white-noise phase diffusion)")


if __name__ == "__main__":
    main()
