#!/usr/bin/env python
"""Quickstart: noise PSD of the paper's switched-capacitor low-pass filter.

Builds the SC low-pass filter of the paper's Fig. 6 (300/100/100 pF,
80 Ω switches, 4 kHz clock, source-follower op-amp), computes its output
noise spectrum with the mixed-frequency-time engine, shows the paper's
Fig. 1 convergence curve for the brute-force baseline at 7.5 kHz, and
prints the per-state noise contribution breakdown.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NoiseAnalysis, sc_lowpass_system
from repro.circuits import ScLowpassParams
from repro.io.asciiplot import ascii_plot
from repro.io.tables import format_table


def main():
    params = ScLowpassParams()
    print(f"SC low-pass filter: C1={params.c1 * 1e12:.0f} pF, "
          f"C2={params.c2 * 1e12:.0f} pF, C3={params.c3 * 1e12:.0f} pF, "
          f"f_clk={params.f_clock / 1e3:.0f} kHz, "
          f"op-amp wu={params.resolved_wu / 1e6:.1f} Mrad/s")
    model = sc_lowpass_system(params)
    print(f"states: {model.system.state_names}")

    analysis = NoiseAnalysis(model, segments_per_phase=48)

    # --- the fast steady-state spectrum ---------------------------------
    freqs = np.linspace(100.0, 12e3, 60)
    spectrum = analysis.psd(freqs)
    print(f"\nMFT spectrum ({len(freqs)} frequencies in "
          f"{spectrum.info['runtime_seconds'] * 1e3:.0f} ms):")
    print(ascii_plot(freqs / 1e3, spectrum.db(), width=64, height=14,
                     label="output noise PSD [dB V^2/Hz] vs f [kHz]"))

    # --- paper Fig. 1: brute-force convergence at 7.5 kHz ----------------
    trace = analysis.convergence_trace(7.5e3, tol_db=0.1,
                                       window_periods=5)
    print(f"\nBrute-force baseline at 7.5 kHz: converged after "
          f"{trace.periods} clock periods "
          f"(MFT needs a single steady-state solve).")
    print(ascii_plot(trace.times * 1e3, trace.psd_estimates,
                     width=64, height=10,
                     label="PSD estimate vs time [ms]  (paper Fig. 1)"))

    # --- figures of merit -------------------------------------------------
    rows = [
        ["average output noise variance [V^2]",
         analysis.output_variance()],
        ["PSD at 7.5 kHz [V^2/Hz] (MFT)", analysis.psd([7.5e3]).psd[0]],
        ["PSD at 7.5 kHz [V^2/Hz] (brute force)", trace.final()],
    ]
    print()
    print(format_table(["quantity", "value"], rows))

    # --- who is responsible for the noise --------------------------------
    print()
    print(analysis.contribution_report(7.5e3))


if __name__ == "__main__":
    main()
